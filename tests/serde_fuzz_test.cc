// Property/fuzz tests for the serialization stack under the checkpoint
// subsystem: varint round-trips across the full magnitude range, the
// Status-returning Try* reads on truncated and malformed buffers (these
// feed both binary graph loading and checkpoint frame decoding), and the
// Writer::Clear high-water-mark capacity decay. Deterministic seeds — a
// failure reproduces exactly.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "icm/message.h"
#include "util/serde.h"
#include "util/varint.h"

namespace graphite {
namespace {

// Values spanning every varint length, plus random fills per magnitude.
std::vector<uint64_t> FuzzValues(uint64_t seed, int per_magnitude) {
  std::mt19937_64 rng(seed);
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  uint64_t{1} << 32, ~uint64_t{0}};
  for (int bits = 1; bits <= 64; ++bits) {
    for (int i = 0; i < per_magnitude; ++i) {
      const uint64_t hi = bits == 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
      values.push_back(rng() & hi);
    }
  }
  return values;
}

TEST(VarintFuzzTest, RoundTripsEveryMagnitude) {
  for (const uint64_t v : FuzzValues(11, 8)) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_LE(buf.size(), 10u);
    size_t pos = 0;
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(buf, &pos, &got)) << v;
    EXPECT_EQ(got, v);
    EXPECT_EQ(pos, buf.size()) << v;

    const int64_t sv = static_cast<int64_t>(v);
    std::string sbuf;
    PutVarint64Signed(&sbuf, sv);
    pos = 0;
    int64_t sgot = 0;
    ASSERT_TRUE(GetVarint64Signed(sbuf, &pos, &sgot)) << sv;
    EXPECT_EQ(sgot, sv);
  }
}

// Every strict prefix of an encoded varint must be rejected, and the
// failed GetVarint64 must leave the cursor untouched (the byte-offset
// errors of the Try* reads depend on that).
TEST(VarintFuzzTest, TruncationRejectedWithoutCursorMovement) {
  for (const uint64_t v : FuzzValues(13, 4)) {
    std::string buf;
    PutVarint64(&buf, v);
    for (size_t keep = 0; keep < buf.size(); ++keep) {
      const std::string cut = buf.substr(0, keep);
      size_t pos = 0;
      uint64_t got = 0;
      EXPECT_FALSE(GetVarint64(cut, &pos, &got)) << v << " keep=" << keep;
      EXPECT_EQ(pos, 0u) << v << " keep=" << keep;
    }
  }
}

// A record mixing every Writer field type, round-tripped through the
// Status-returning reads.
TEST(SerdeFuzzTest, TryReadsRoundTripRandomRecords) {
  std::mt19937_64 rng(17);
  for (int round = 0; round < 200; ++round) {
    const uint64_t a = rng();
    const int64_t b = static_cast<int64_t>(rng());
    const uint8_t c = static_cast<uint8_t>(rng());
    std::string blob(rng() % 40, '\0');
    for (char& ch : blob) ch = static_cast<char>(rng());

    Writer w;
    w.WriteU64(a);
    w.WriteI64(b);
    w.WriteByte(c);
    w.WriteBytes(blob);
    const std::string bytes = w.Release();

    Reader r(bytes);
    uint64_t ga = 0;
    int64_t gb = 0;
    uint8_t gc = 0;
    std::string gblob;
    ASSERT_TRUE(r.TryReadU64(&ga).ok());
    ASSERT_TRUE(r.TryReadI64(&gb).ok());
    ASSERT_TRUE(r.TryReadByte(&gc).ok());
    ASSERT_TRUE(r.TryReadBytes(&gblob).ok());
    EXPECT_EQ(ga, a);
    EXPECT_EQ(gb, b);
    EXPECT_EQ(gc, c);
    EXPECT_EQ(gblob, blob);
    EXPECT_TRUE(r.AtEnd());

    // Replay against every truncation: must terminate with a DataLoss
    // whose offset is inside the buffer — never an abort, never success.
    for (size_t keep = 0; keep < bytes.size(); ++keep) {
      const std::string cut = bytes.substr(0, keep);
      Reader tr(cut);
      Status st = tr.TryReadU64(&ga);
      if (st.ok()) st = tr.TryReadI64(&gb);
      if (st.ok()) st = tr.TryReadByte(&gc);
      if (st.ok()) st = tr.TryReadBytes(&gblob);
      ASSERT_FALSE(st.ok()) << "round " << round << " keep=" << keep;
      EXPECT_EQ(st.code(), StatusCode::kDataLoss);
      EXPECT_LE(tr.position(), cut.size());
    }
  }
}

// A length prefix pointing past the end of the buffer must not be
// honored, and the cursor must rewind to the start of the field.
TEST(SerdeFuzzTest, OverlongLengthPrefixRejected) {
  Writer w;
  w.WriteU64(1000000);  // length prefix promising a megabyte
  w.WriteByte('x');
  const std::string bytes = w.buffer();
  Reader r(bytes);
  std::string out;
  const Status st = r.TryReadBytes(&out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_EQ(r.position(), 0u);  // offset names the field, not its tail
}

TEST(SerdeFuzzTest, TryReadIntervalMatchesWriteInterval) {
  std::mt19937_64 rng(29);
  std::vector<Interval> cases = {
      Interval(3, 4),                    // unit
      Interval(0, kTimeMax),             // full span
      Interval(5, kTimeMax),             // open end
      Interval(kTimeMin, 9),             // open start
      Interval(2, 17),                   // generic
  };
  for (int i = 0; i < 100; ++i) {
    const TimePoint s = static_cast<TimePoint>(rng() % 1000);
    cases.push_back(Interval(s, s + 1 + static_cast<TimePoint>(rng() % 50)));
  }
  for (const Interval& iv : cases) {
    Writer w;
    WriteInterval(w, iv);
    const std::string bytes = w.buffer();
    Reader r(bytes);
    Interval got;
    ASSERT_TRUE(TryReadInterval(r, &got).ok());
    EXPECT_EQ(got, iv);
    EXPECT_TRUE(r.AtEnd());
    for (size_t keep = 0; keep < bytes.size(); ++keep) {
      const std::string cut = bytes.substr(0, keep);
      Reader tr(cut);
      EXPECT_FALSE(TryReadInterval(tr, &got).ok()) << "keep=" << keep;
    }
  }
  // An unknown flag byte is DataLoss, not an abort.
  const std::string bad_flag("\xee", 1);
  Reader bad(bad_flag);
  Interval got;
  const Status st = TryReadInterval(bad, &got);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
}

// Random frames through the checkpoint frame codec: round-trip plus
// random mutations, which must never abort the process (DataLoss or a
// well-formed — possibly different — frame are both acceptable).
TEST(SerdeFuzzTest, CheckpointFrameFuzz) {
  std::mt19937_64 rng(31);
  for (int round = 0; round < 100; ++round) {
    CheckpointFrame frame;
    frame.superstep = static_cast<int>(rng() % 1000);
    frame.num_units = rng() % 100000;
    frame.counters = {static_cast<int64_t>(rng() % 1000),
                      static_cast<int64_t>(rng()),
                      static_cast<int64_t>(rng() % 977),
                      static_cast<int64_t>(rng() % 10007),
                      static_cast<int64_t>(rng() % 1000003),
                      static_cast<int64_t>(rng() % 13),
                      static_cast<int64_t>(rng() % 7)};
    frame.sections.resize(rng() % 9);
    for (std::string& s : frame.sections) {
      s.resize(rng() % 120);
      for (char& ch : s) ch = static_cast<char>(rng());
    }

    const std::string bytes = EncodeFrame(frame);
    const auto got = DecodeFrame(bytes);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value().sections, frame.sections);
    EXPECT_EQ(got.value().superstep, frame.superstep);

    std::string mutated = bytes;
    if (!mutated.empty()) {
      mutated[rng() % mutated.size()] ^= static_cast<char>(1 + rng() % 255);
      const auto damaged = DecodeFrame(mutated);  // must not abort
      if (!damaged.ok()) {
        EXPECT_EQ(damaged.status().code(), StatusCode::kDataLoss);
      }
    }
  }
}

// Writer::Clear decays its retained capacity: one pathological superstep
// must not pin megabytes for the rest of a long run.
TEST(WriterClearTest, HighWaterMarkDecayShrinksCapacity) {
  Writer w;
  const std::string big(1 << 20, 'x');
  w.WriteBytes(big);
  w.Clear();
  const size_t peak = w.buffer().capacity();
  EXPECT_GE(peak, big.size());

  // A long tail of small supersteps: the decaying high-water mark drops
  // 1/8 per Clear, so capacity must come back down within ~a hundred.
  for (int i = 0; i < 150; ++i) {
    w.WriteU64(123456);
    w.Clear();
  }
  EXPECT_LT(w.buffer().capacity(), size_t{1} << 16)
      << "capacity pinned at " << w.buffer().capacity();

  // A new burst re-raises it instantly and the buffer still works.
  w.WriteBytes(big);
  EXPECT_EQ(w.size(), big.size() + VarintLength(big.size()));
  Reader r(w.buffer());
  std::string out;
  ASSERT_TRUE(r.TryReadBytes(&out).ok());
  EXPECT_EQ(out, big);
}

}  // namespace
}  // namespace graphite
