// Property/fuzz tests for the serialization stack under the checkpoint
// subsystem: varint round-trips across the full magnitude range, the
// Status-returning Try* reads on truncated and malformed buffers (these
// feed both binary graph loading and checkpoint frame decoding), and the
// Writer::Clear high-water-mark capacity decay. Deterministic seeds — a
// failure reproduces exactly.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "icm/message.h"
#include "util/json.h"
#include "util/serde.h"
#include "util/varint.h"

namespace graphite {
namespace {

// Values spanning every varint length, plus random fills per magnitude.
std::vector<uint64_t> FuzzValues(uint64_t seed, int per_magnitude) {
  std::mt19937_64 rng(seed);
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                  uint64_t{1} << 32, ~uint64_t{0}};
  for (int bits = 1; bits <= 64; ++bits) {
    for (int i = 0; i < per_magnitude; ++i) {
      const uint64_t hi = bits == 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
      values.push_back(rng() & hi);
    }
  }
  return values;
}

TEST(VarintFuzzTest, RoundTripsEveryMagnitude) {
  for (const uint64_t v : FuzzValues(11, 8)) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_LE(buf.size(), 10u);
    size_t pos = 0;
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(buf, &pos, &got)) << v;
    EXPECT_EQ(got, v);
    EXPECT_EQ(pos, buf.size()) << v;

    const int64_t sv = static_cast<int64_t>(v);
    std::string sbuf;
    PutVarint64Signed(&sbuf, sv);
    pos = 0;
    int64_t sgot = 0;
    ASSERT_TRUE(GetVarint64Signed(sbuf, &pos, &sgot)) << sv;
    EXPECT_EQ(sgot, sv);
  }
}

// Every strict prefix of an encoded varint must be rejected, and the
// failed GetVarint64 must leave the cursor untouched (the byte-offset
// errors of the Try* reads depend on that).
TEST(VarintFuzzTest, TruncationRejectedWithoutCursorMovement) {
  for (const uint64_t v : FuzzValues(13, 4)) {
    std::string buf;
    PutVarint64(&buf, v);
    for (size_t keep = 0; keep < buf.size(); ++keep) {
      const std::string cut = buf.substr(0, keep);
      size_t pos = 0;
      uint64_t got = 0;
      EXPECT_FALSE(GetVarint64(cut, &pos, &got)) << v << " keep=" << keep;
      EXPECT_EQ(pos, 0u) << v << " keep=" << keep;
    }
  }
}

// A record mixing every Writer field type, round-tripped through the
// Status-returning reads.
TEST(SerdeFuzzTest, TryReadsRoundTripRandomRecords) {
  std::mt19937_64 rng(17);
  for (int round = 0; round < 200; ++round) {
    const uint64_t a = rng();
    const int64_t b = static_cast<int64_t>(rng());
    const uint8_t c = static_cast<uint8_t>(rng());
    std::string blob(rng() % 40, '\0');
    for (char& ch : blob) ch = static_cast<char>(rng());

    Writer w;
    w.WriteU64(a);
    w.WriteI64(b);
    w.WriteByte(c);
    w.WriteBytes(blob);
    const std::string bytes = w.Release();

    Reader r(bytes);
    uint64_t ga = 0;
    int64_t gb = 0;
    uint8_t gc = 0;
    std::string gblob;
    ASSERT_TRUE(r.TryReadU64(&ga).ok());
    ASSERT_TRUE(r.TryReadI64(&gb).ok());
    ASSERT_TRUE(r.TryReadByte(&gc).ok());
    ASSERT_TRUE(r.TryReadBytes(&gblob).ok());
    EXPECT_EQ(ga, a);
    EXPECT_EQ(gb, b);
    EXPECT_EQ(gc, c);
    EXPECT_EQ(gblob, blob);
    EXPECT_TRUE(r.AtEnd());

    // Replay against every truncation: must terminate with a DataLoss
    // whose offset is inside the buffer — never an abort, never success.
    for (size_t keep = 0; keep < bytes.size(); ++keep) {
      const std::string cut = bytes.substr(0, keep);
      Reader tr(cut);
      Status st = tr.TryReadU64(&ga);
      if (st.ok()) st = tr.TryReadI64(&gb);
      if (st.ok()) st = tr.TryReadByte(&gc);
      if (st.ok()) st = tr.TryReadBytes(&gblob);
      ASSERT_FALSE(st.ok()) << "round " << round << " keep=" << keep;
      EXPECT_EQ(st.code(), StatusCode::kDataLoss);
      EXPECT_LE(tr.position(), cut.size());
    }
  }
}

// A length prefix pointing past the end of the buffer must not be
// honored, and the cursor must rewind to the start of the field.
TEST(SerdeFuzzTest, OverlongLengthPrefixRejected) {
  Writer w;
  w.WriteU64(1000000);  // length prefix promising a megabyte
  w.WriteByte('x');
  const std::string bytes = w.buffer();
  Reader r(bytes);
  std::string out;
  const Status st = r.TryReadBytes(&out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_EQ(r.position(), 0u);  // offset names the field, not its tail
}

TEST(SerdeFuzzTest, TryReadIntervalMatchesWriteInterval) {
  std::mt19937_64 rng(29);
  std::vector<Interval> cases = {
      Interval(3, 4),                    // unit
      Interval(0, kTimeMax),             // full span
      Interval(5, kTimeMax),             // open end
      Interval(kTimeMin, 9),             // open start
      Interval(2, 17),                   // generic
  };
  for (int i = 0; i < 100; ++i) {
    const TimePoint s = static_cast<TimePoint>(rng() % 1000);
    cases.push_back(Interval(s, s + 1 + static_cast<TimePoint>(rng() % 50)));
  }
  for (const Interval& iv : cases) {
    Writer w;
    WriteInterval(w, iv);
    const std::string bytes = w.buffer();
    Reader r(bytes);
    Interval got;
    ASSERT_TRUE(TryReadInterval(r, &got).ok());
    EXPECT_EQ(got, iv);
    EXPECT_TRUE(r.AtEnd());
    for (size_t keep = 0; keep < bytes.size(); ++keep) {
      const std::string cut = bytes.substr(0, keep);
      Reader tr(cut);
      EXPECT_FALSE(TryReadInterval(tr, &got).ok()) << "keep=" << keep;
    }
  }
  // An unknown flag byte is DataLoss, not an abort.
  const std::string bad_flag("\xee", 1);
  Reader bad(bad_flag);
  Interval got;
  const Status st = TryReadInterval(bad, &got);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss);
}

// Random frames through the checkpoint frame codec: round-trip plus
// random mutations, which must never abort the process (DataLoss or a
// well-formed — possibly different — frame are both acceptable).
TEST(SerdeFuzzTest, CheckpointFrameFuzz) {
  std::mt19937_64 rng(31);
  for (int round = 0; round < 100; ++round) {
    CheckpointFrame frame;
    frame.superstep = static_cast<int>(rng() % 1000);
    frame.num_units = rng() % 100000;
    frame.counters = {static_cast<int64_t>(rng() % 1000),
                      static_cast<int64_t>(rng()),
                      static_cast<int64_t>(rng() % 977),
                      static_cast<int64_t>(rng() % 10007),
                      static_cast<int64_t>(rng() % 1000003),
                      static_cast<int64_t>(rng() % 13),
                      static_cast<int64_t>(rng() % 7)};
    frame.sections.resize(rng() % 9);
    for (std::string& s : frame.sections) {
      s.resize(rng() % 120);
      for (char& ch : s) ch = static_cast<char>(rng());
    }

    const std::string bytes = EncodeFrame(frame);
    const auto got = DecodeFrame(bytes);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value().sections, frame.sections);
    EXPECT_EQ(got.value().superstep, frame.superstep);

    std::string mutated = bytes;
    if (!mutated.empty()) {
      mutated[rng() % mutated.size()] ^= static_cast<char>(1 + rng() % 255);
      const auto damaged = DecodeFrame(mutated);  // must not abort
      if (!damaged.ok()) {
        EXPECT_EQ(damaged.status().code(), StatusCode::kDataLoss);
      }
    }
  }
}

// --- ParseJson fuzzing (ISSUE 9) -------------------------------------
//
// The JSON parser fronts the serving protocol: every byte a client sends
// reaches ParseJson before anything else. These sections feed it random
// garbage and mutated valid documents; the contract is that it returns a
// Status — it must never abort, crash, or read out of bounds (the latter
// enforced by running this suite under the asan/ubsan presets).

// A random JSON document tree with bounded depth/fanout. Deterministic
// per seed so failures reproduce.
JsonValue RandomJsonValue(std::mt19937_64& rng, int depth) {
  const int pick = static_cast<int>(rng() % (depth > 0 ? 7 : 5));
  switch (pick) {
    case 0:
      return JsonValue();  // null
    case 1:
      return JsonValue::MakeBool(rng() % 2 != 0);
    case 2:
      return JsonValue::MakeInt(static_cast<int64_t>(rng()));
    case 3:
      // Finite doubles only: NaN/Inf are not representable in JSON.
      return JsonValue::MakeDouble(
          static_cast<double>(static_cast<int64_t>(rng() % 1000000)) / 64.0);
    case 4: {
      std::string s(rng() % 24, '\0');
      for (char& ch : s) {
        // Mix printable ASCII with escapes and raw control bytes.
        const int c = static_cast<int>(rng() % 130);
        ch = static_cast<char>(c < 2 ? '"' : (c < 4 ? '\\' : c));
      }
      return JsonValue::MakeString(std::move(s));
    }
    case 5: {
      JsonValue arr = JsonValue::MakeArray();
      const int n = static_cast<int>(rng() % 5);
      for (int i = 0; i < n; ++i) arr.Push(RandomJsonValue(rng, depth - 1));
      return arr;
    }
    default: {
      JsonValue obj = JsonValue::MakeObject();
      const int n = static_cast<int>(rng() % 5);
      for (int i = 0; i < n; ++i) {
        obj.Add("k" + std::to_string(i), RandomJsonValue(rng, depth - 1));
      }
      return obj;
    }
  }
}

std::string Serialize(const JsonValue& v) {
  JsonWriter w;
  v.WriteTo(&w);
  return w.Take();
}

// Pure random bytes: overwhelmingly invalid JSON, occasionally valid
// fragments ("1", "[]"). Either way ParseJson must return, not abort.
TEST(JsonFuzzTest, RandomBytesNeverAbort) {
  std::mt19937_64 rng(37);
  for (int round = 0; round < 2000; ++round) {
    std::string doc(rng() % 64, '\0');
    const bool ascii_heavy = round % 2 == 0;
    for (char& ch : doc) {
      ch = ascii_heavy
               ? static_cast<char>("{}[]:,\"\\truefalsn0123456789.eE+- "
                                   [rng() % 33])
               : static_cast<char>(rng());
    }
    const auto parsed = ParseJson(doc);
    if (parsed.ok()) {
      // Whatever it accepted must re-serialize to parseable JSON.
      const auto again = ParseJson(Serialize(parsed.value()));
      EXPECT_TRUE(again.ok()) << "round " << round << " doc=" << doc;
    }
  }
}

// Valid documents with random single-byte mutations (flips, inserts,
// truncations). Accept-or-reject is fine; aborting is not, and anything
// accepted must survive a serialize→parse round trip.
TEST(JsonFuzzTest, MutatedValidDocumentsNeverAbort) {
  std::mt19937_64 rng(41);
  for (int round = 0; round < 500; ++round) {
    std::string doc = Serialize(RandomJsonValue(rng, 3));
    const int mutation = static_cast<int>(rng() % 3);
    if (doc.empty()) continue;
    if (mutation == 0) {
      doc[rng() % doc.size()] ^= static_cast<char>(1 + rng() % 255);
    } else if (mutation == 1) {
      doc.insert(rng() % doc.size(),
                 1, static_cast<char>("{}[]:,\"0"[rng() % 8]));
    } else {
      doc.resize(rng() % doc.size());
    }
    const auto damaged = ParseJson(doc);
    if (damaged.ok()) {
      EXPECT_TRUE(ParseJson(Serialize(damaged.value())).ok())
          << "round " << round << " doc=" << doc;
    }
  }
}

// Writer → parser → writer round trip: the two serializations must be
// byte-identical, which pins escaping, number formatting, and member
// order preservation all at once.
TEST(JsonFuzzTest, WriterParserRoundTripIsByteStable) {
  std::mt19937_64 rng(43);
  for (int round = 0; round < 300; ++round) {
    const JsonValue original = RandomJsonValue(rng, 4);
    const std::string first = Serialize(original);
    const auto reparsed = ParseJson(first);
    ASSERT_TRUE(reparsed.ok())
        << "round " << round << ": " << reparsed.status().ToString()
        << " doc=" << first;
    EXPECT_EQ(Serialize(reparsed.value()), first) << "round " << round;
  }
}

// Deep nesting must be rejected with an error (or parsed, for shallow
// cases) — never a stack overflow. 100k brackets would blow the stack
// if the parser recursed unboundedly.
TEST(JsonFuzzTest, PathologicalNestingDoesNotOverflow) {
  for (const char* pair : {"[", "{\"k\":"}) {
    std::string doc;
    for (int i = 0; i < 100000; ++i) doc += pair;
    const auto parsed = ParseJson(doc);
    EXPECT_FALSE(parsed.ok());
  }
}

// Writer::Clear decays its retained capacity: one pathological superstep
// must not pin megabytes for the rest of a long run.
TEST(WriterClearTest, HighWaterMarkDecayShrinksCapacity) {
  Writer w;
  const std::string big(1 << 20, 'x');
  w.WriteBytes(big);
  w.Clear();
  const size_t peak = w.buffer().capacity();
  EXPECT_GE(peak, big.size());

  // A long tail of small supersteps: the decaying high-water mark drops
  // 1/8 per Clear, so capacity must come back down within ~a hundred.
  for (int i = 0; i < 150; ++i) {
    w.WriteU64(123456);
    w.Clear();
  }
  EXPECT_LT(w.buffer().capacity(), size_t{1} << 16)
      << "capacity pinned at " << w.buffer().capacity();

  // A new burst re-raises it instantly and the buffer still works.
  w.WriteBytes(big);
  EXPECT_EQ(w.size(), big.size() + VarintLength(big.size()));
  Reader r(w.buffer());
  std::string out;
  ASSERT_TRUE(r.TryReadBytes(&out).ok());
  EXPECT_EQ(out, big);
}

}  // namespace
}  // namespace graphite
