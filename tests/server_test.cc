// Serving-layer tests: interleaved scheduler jobs must be byte-identical
// to standalone engine runs (across scheduling modes), repeated requests
// must be served from the ResultCache without re-running supersteps, the
// bounded admission queue must reject deterministically, and both wire
// fronts (TCP and stream) must speak the protocol end to end.
#include "server/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "testutil.h"
#include "util/mutex.h"

namespace graphite {
namespace {

QueryRequest MustParse(const std::string& line) {
  auto req = QueryService::Parse(line);
  GRAPHITE_CHECK(req.ok());
  return *req;
}

/// The standalone expectation: the canonical fragment rendered against a
/// fresh single-use Workload, no server anywhere in sight.
std::string Standalone(const QueryRequest& req, const TemporalGraph& g) {
  Workload w{TemporalGraph(g)};
  auto fragment = QueryService::RenderFragment(req, w);
  GRAPHITE_CHECK(fragment.ok());
  return *fragment;
}

/// The mixed request set the concurrency tests replay over each graph.
std::vector<std::string> MixedRequests(const std::string& graph) {
  const std::string g = "\"graph\":\"" + graph + "\"";
  return {
      "{\"op\":\"run\"," + g + ",\"alg\":\"bfs\",\"source\":0}",
      "{\"op\":\"run\"," + g + ",\"alg\":\"wcc\",\"platform\":\"msb\"}",
      "{\"op\":\"run\"," + g + ",\"alg\":\"pr\"}",
      "{\"op\":\"run\"," + g + ",\"alg\":\"sssp\",\"source\":0}",
      "{\"op\":\"run\"," + g + ",\"alg\":\"eat\",\"source\":0,"
          "\"platform\":\"tgb\"}",
      "{\"op\":\"run\"," + g + ",\"alg\":\"bfs\",\"source\":0,"
          "\"window\":[1,8]}",
      "{\"op\":\"path\"," + g + ",\"kind\":\"eat\",\"source\":0,"
          "\"target\":4}",
      "{\"op\":\"reach_at\"," + g + ",\"source\":0,\"at\":6}",
      "{\"op\":\"bfs_at\"," + g + ",\"source\":0,\"at\":6}",
      "{\"op\":\"stats\"," + g + "}",
  };
}

TEST(QueryServiceTest, ExecuteMatchesStandaloneRender) {
  GraphRegistry registry;
  ResultCache cache(64);
  QueryService service(&registry, &cache);
  registry.Add("t", testutil::MakeTransitGraph());

  const TemporalGraph standalone_graph = testutil::MakeTransitGraph();
  for (const std::string& line : MixedRequests("t")) {
    const QueryRequest req = MustParse(line);
    const std::string expected = Standalone(req, standalone_graph);
    const std::string response = service.Execute(req);
    EXPECT_NE(response.find("\"ok\": true"), std::string::npos) << response;
    // Byte-identity: the response embeds the standalone fragment verbatim.
    EXPECT_NE(response.find(expected), std::string::npos)
        << line << "\n" << response;
  }
}

TEST(QueryServiceTest, ResultFragmentIdenticalAcrossSchedulingModes) {
  GraphRegistry registry;
  QueryService service(&registry, /*cache=*/nullptr);
  registry.Add("t", testutil::MakeTransitGraph());
  const TemporalGraph standalone_graph = testutil::MakeTransitGraph();

  for (const std::string& line : MixedRequests("t")) {
    QueryRequest req = MustParse(line);
    const std::string expected = Standalone(req, standalone_graph);
    for (const char* mode :
         {"sequential", "spawn", "pool", "stealing"}) {
      req.mode = mode;
      req.workers = 4;
      const std::string response = service.Execute(req);
      EXPECT_NE(response.find(expected), std::string::npos)
          << line << " mode=" << mode << "\n" << response;
    }
  }
}

TEST(QueryServiceTest, RepeatedRequestServedFromCache) {
  GraphRegistry registry;
  ResultCache cache(64);
  QueryService service(&registry, &cache);
  registry.Add("t", testutil::MakeTransitGraph());

  const QueryRequest req = MustParse(
      "{\"op\":\"run\",\"graph\":\"t\",\"alg\":\"sssp\",\"source\":0}");
  ExecStats first, second;
  const std::string cold = service.Execute(req, 0, &first);
  const std::string warm = service.Execute(req, 0, &second);
  EXPECT_FALSE(first.cached);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(second.supersteps, 0);  // no supersteps re-run on a hit
  EXPECT_EQ(cache.stats().hits, 1);
  // Identical result fragment on hit and miss.
  const std::string expected =
      Standalone(req, testutil::MakeTransitGraph());
  EXPECT_NE(cold.find(expected), std::string::npos);
  EXPECT_NE(warm.find(expected), std::string::npos);
  EXPECT_NE(cold.find("\"cached\": false"), std::string::npos);
  EXPECT_NE(warm.find("\"cached\": true"), std::string::npos);
}

TEST(QueryServiceTest, ReloadBumpsEpochAndMissesCache) {
  GraphRegistry registry;
  ResultCache cache(64);
  QueryService service(&registry, &cache);
  registry.Add("t", testutil::MakeTransitGraph());

  const QueryRequest req = MustParse(
      "{\"op\":\"run\",\"graph\":\"t\",\"alg\":\"bfs\",\"source\":0}");
  ExecStats stats;
  service.Execute(req, 0, &stats);
  registry.Add("t", testutil::MakeTransitGraph());  // reload: new epoch
  service.Execute(req, 0, &stats);
  EXPECT_FALSE(stats.cached);  // epoch in the key -> no stale hit
}

TEST(QueryServiceTest, ErrorsBecomeErrorResponses) {
  GraphRegistry registry;
  QueryService service(&registry, nullptr);
  registry.Add("t", testutil::MakeTransitGraph());

  const std::string missing_graph = service.Execute(
      MustParse("{\"op\":\"run\",\"graph\":\"nope\",\"alg\":\"bfs\"}"));
  EXPECT_NE(missing_graph.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(missing_graph.find("NotFound"), std::string::npos);

  const std::string bad_alg = service.Execute(
      MustParse("{\"op\":\"run\",\"graph\":\"t\",\"alg\":\"nope\"}"));
  EXPECT_NE(bad_alg.find("InvalidArgument"), std::string::npos);

  const std::string bad_combo = service.Execute(MustParse(
      "{\"op\":\"run\",\"graph\":\"t\",\"alg\":\"sssp\","
      "\"platform\":\"msb\"}"));
  EXPECT_NE(bad_combo.find("InvalidArgument"), std::string::npos);
}

// The acceptance scenario: >= 64 concurrent mixed requests over >= 2
// resident graphs, every response byte-identical to a standalone run.
TEST(ServerConcurrencyTest, InterleavedJobsMatchStandalone) {
  ServerOptions options;
  options.scheduler.num_threads = 4;
  Server server(options);
  // Full-lifespan vertices so every request shape (windowed runs, source
  // vertex 0) is valid on the random graph too.
  testutil::RandomGraphOptions ropt;
  ropt.full_lifespan_prob = 1.0;
  server.registry().Add("t", testutil::MakeTransitGraph());
  server.registry().Add("r", testutil::MakeRandomGraph(77, ropt));

  const TemporalGraph transit = testutil::MakeTransitGraph();
  const TemporalGraph random = testutil::MakeRandomGraph(77, ropt);

  // 2 graphs x 10 request shapes x 4 repeats = 80 requests. Repeats make
  // the cache and the pipelining path work; expectations are computed
  // once, standalone, before the server sees anything.
  struct Item {
    std::string line;
    std::string expected;
  };
  std::vector<Item> items;
  std::map<int64_t, std::string> expected_by_id;
  int64_t next_id = 1;
  for (int rep = 0; rep < 4; ++rep) {
    for (const auto& [name, graph] :
         std::vector<std::pair<std::string, const TemporalGraph*>>{
             {"t", &transit}, {"r", &random}}) {
      for (const std::string& line : MixedRequests(name)) {
        QueryRequest req = MustParse(line);
        req.id = next_id;
        const std::string expected = Standalone(req, *graph);
        std::string with_id = "{\"id\":" + std::to_string(next_id) + "," +
                              line.substr(1);
        expected_by_id[next_id] = expected;
        items.push_back({std::move(with_id), expected});
        ++next_id;
      }
    }
  }
  ASSERT_GE(items.size(), 64u);

  Mutex mu;
  std::vector<std::string> responses;
  auto respond = [&](std::string line) {
    MutexLock lock(mu);
    responses.push_back(std::move(line));
  };

  // Fire from 8 submitter threads to interleave admissions.
  std::vector<std::thread> submitters;
  std::atomic<size_t> cursor{0};
  for (int s = 0; s < 8; ++s) {
    submitters.emplace_back([&] {
      for (;;) {
        const size_t i = cursor.fetch_add(1);
        if (i >= items.size()) return;
        server.HandleLine(items[i].line, respond);
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  server.scheduler().Drain();

  ASSERT_EQ(responses.size(), items.size());
  for (const std::string& response : responses) {
    auto doc = ParseJson(response);
    ASSERT_TRUE(doc.ok()) << response;
    ASSERT_TRUE(doc->GetBool("ok")) << response;
    const int64_t id = doc->GetInt("id", -1);
    ASSERT_TRUE(expected_by_id.count(id)) << response;
    EXPECT_NE(response.find(expected_by_id[id]), std::string::npos)
        << response;
  }
  // Repeats hit the cache: 80 accepted, 20 distinct results.
  const ResultCacheStats cs = server.cache().stats();
  EXPECT_GE(cs.hits, 1);
  EXPECT_EQ(server.scheduler().stats().submitted,
            static_cast<int64_t>(items.size()));
}

TEST(SchedulerTest, BoundedAdmissionRejectsWhenFull) {
  GraphRegistry registry;
  ResultCache cache(16);
  QueryService service(&registry, &cache);
  registry.Add("t", testutil::MakeTransitGraph());

  SchedulerOptions options;
  options.num_threads = 0;  // admission-only: nothing runs until we say so
  options.max_queue = 2;
  JobScheduler scheduler(&service, options);

  const QueryRequest req = MustParse(
      "{\"op\":\"run\",\"graph\":\"t\",\"alg\":\"bfs\",\"source\":0}");
  std::vector<std::string> responses;
  auto respond = [&](std::string line) {
    responses.push_back(std::move(line));
  };
  EXPECT_TRUE(scheduler.Submit(req, respond).ok());
  EXPECT_TRUE(scheduler.Submit(req, respond).ok());
  const Status third = scheduler.Submit(req, respond);
  EXPECT_EQ(third.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(scheduler.stats().rejected, 1);

  // Drain by hand; the duplicate second job becomes a cache hit.
  EXPECT_TRUE(scheduler.RunOneForTest());
  EXPECT_TRUE(scheduler.RunOneForTest());
  EXPECT_FALSE(scheduler.RunOneForTest());
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_NE(responses[0].find("\"cached\": false"), std::string::npos);
  EXPECT_NE(responses[1].find("\"cached\": true"), std::string::npos);

  // Control op through the scheduler is a usage error, not a crash.
  EXPECT_EQ(scheduler
                .Submit(MustParse("{\"op\":\"list\"}"),
                        [](std::string) {})
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SchedulerTest, StopFailsQueuedJobs) {
  GraphRegistry registry;
  QueryService service(&registry, nullptr);
  registry.Add("t", testutil::MakeTransitGraph());

  SchedulerOptions options;
  options.num_threads = 0;
  JobScheduler scheduler(&service, options);
  std::vector<std::string> responses;
  const QueryRequest req = MustParse(
      "{\"id\":9,\"op\":\"run\",\"graph\":\"t\",\"alg\":\"bfs\"}");
  ASSERT_TRUE(scheduler
                  .Submit(req,
                          [&](std::string line) {
                            responses.push_back(std::move(line));
                          })
                  .ok());
  scheduler.Stop();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_NE(responses[0].find("\"ok\": false"), std::string::npos);
  EXPECT_NE(responses[0].find("shutting down"), std::string::npos);
  // Post-stop submissions are refused.
  EXPECT_FALSE(scheduler.Submit(req, [](std::string) {}).ok());
}

TEST(SchedulerTest, FastPathHitBypassesQueue) {
  GraphRegistry registry;
  ResultCache cache(16);
  QueryService service(&registry, &cache);
  registry.Add("t", testutil::MakeTransitGraph());

  SchedulerOptions options;
  options.num_threads = 0;  // queue never drains on its own...
  JobScheduler scheduler(&service, options);
  const QueryRequest req = MustParse(
      "{\"op\":\"run\",\"graph\":\"t\",\"alg\":\"bfs\",\"source\":0}");
  std::string inline_response;
  ASSERT_TRUE(scheduler.Submit(req, [](std::string) {}).ok());
  ASSERT_TRUE(scheduler.RunOneForTest());  // warm the cache
  // ...yet a warm submit answers inline, without a worker.
  ASSERT_TRUE(scheduler
                  .Submit(req,
                          [&](std::string line) {
                            inline_response = std::move(line);
                          })
                  .ok());
  EXPECT_NE(inline_response.find("\"cached\": true"), std::string::npos);
  EXPECT_EQ(scheduler.stats().fastpath_hits, 1);
  EXPECT_EQ(scheduler.stats().queued, 0u);
}

TEST(ServerStreamTest, StdioProtocolEndToEnd) {
  ServerOptions options;
  options.scheduler.num_threads = 2;
  Server server(options);
  server.registry().Add("t", testutil::MakeTransitGraph());

  std::istringstream in(
      "{\"id\":1,\"op\":\"ping\"}\n"
      "{\"id\":2,\"op\":\"list\"}\n"
      "{\"id\":3,\"op\":\"run\",\"graph\":\"t\",\"alg\":\"bfs\","
      "\"source\":0,\"metrics\":true}\n"
      "{\"id\":4,\"op\":\"metrics\"}\n"
      "not json\n");
  std::ostringstream out;
  const int64_t handled = server.ServeStream(in, out);
  EXPECT_EQ(handled, 5);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"op\": \"ping\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"t\""), std::string::npos);
  EXPECT_NE(text.find("\"supersteps\""), std::string::npos);
  EXPECT_NE(text.find("\"metrics\""), std::string::npos);
  EXPECT_NE(text.find("\"hit_rate\""), std::string::npos);
  EXPECT_NE(text.find("\"ok\": false"), std::string::npos);  // bad line
}

// Minimal line-oriented TCP client for the end-to-end test.
class LineClient {
 public:
  explicit LineClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    GRAPHITE_CHECK(fd_ >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    GRAPHITE_CHECK(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr)) == 0);
  }
  ~LineClient() { ::close(fd_); }

  void Send(const std::string& line) {
    const std::string out = line + "\n";
    size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::write(fd_, out.data() + off, out.size() - off);
      GRAPHITE_CHECK(n > 0 || errno == EINTR);
      if (n > 0) off += static_cast<size_t>(n);
    }
  }

  std::string ReadLine() {
    for (;;) {
      const size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      GRAPHITE_CHECK(n > 0);
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

TEST(ServerTcpTest, ProtocolOverLoopback) {
  ServerOptions options;
  options.scheduler.num_threads = 2;
  Server server(options);
  server.registry().Add("t", testutil::MakeTransitGraph());
  auto port = server.ListenTcp(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  std::thread serve([&] { server.ServeTcp(); });

  {
    LineClient client(*port);
    client.Send("{\"id\":1,\"op\":\"ping\"}");
    client.Send(
        "{\"id\":2,\"op\":\"run\",\"graph\":\"t\",\"alg\":\"sssp\","
        "\"source\":0}");
    std::map<int64_t, std::string> by_id;
    for (int i = 0; i < 2; ++i) {
      const std::string line = client.ReadLine();
      auto doc = ParseJson(line);
      ASSERT_TRUE(doc.ok()) << line;
      by_id[doc->GetInt("id", -1)] = line;
    }
    EXPECT_NE(by_id[1].find("\"op\": \"ping\""), std::string::npos);
    const QueryRequest req = MustParse(
        "{\"op\":\"run\",\"graph\":\"t\",\"alg\":\"sssp\",\"source\":0}");
    const std::string expected =
        Standalone(req, testutil::MakeTransitGraph());
    EXPECT_NE(by_id[2].find(expected), std::string::npos) << by_id[2];

    client.Send("{\"id\":3,\"op\":\"shutdown\"}");
    EXPECT_NE(client.ReadLine().find("\"op\": \"shutdown\""),
              std::string::npos);
  }
  serve.join();
}

}  // namespace
}  // namespace graphite
