// Unit tests for the runtime-dispatched SIMD primitives (util/simd.h):
// every wide body is pinned exactly against the scalar body over random
// and adversarial inputs, at every dispatch level this host supports, so
// the warp kernel's byte-identity guarantee (tests/warp_soa_test.cc)
// rests on primitives that are individually proven exact.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "temporal/time.h"
#include "util/rng.h"
#include "util/simd.h"

namespace graphite {
namespace {

std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  if (SimdMaxSupported() >= SimdLevel::kSse2) {
    levels.push_back(SimdLevel::kSse2);
  }
  if (SimdMaxSupported() >= SimdLevel::kAvx2) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

// Sizes straddling every vector width, remainder handling, and empty.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 100};

TEST(SimdDispatchTest, LevelNamesAndLanes) {
  EXPECT_STREQ("scalar", SimdLevelName(SimdLevel::kScalar));
  EXPECT_STREQ("sse2", SimdLevelName(SimdLevel::kSse2));
  EXPECT_STREQ("avx2", SimdLevelName(SimdLevel::kAvx2));
  EXPECT_EQ(1, SimdLanes(SimdLevel::kScalar));
  EXPECT_EQ(2, SimdLanes(SimdLevel::kSse2));
  EXPECT_EQ(4, SimdLanes(SimdLevel::kAvx2));
}

TEST(SimdDispatchTest, NameParsing) {
  const SimdLevel fb = SimdLevel::kScalar;
  EXPECT_EQ(SimdLevel::kScalar, SimdLevelFromName("scalar", fb));
  EXPECT_EQ(SimdLevel::kSse2, SimdLevelFromName("sse2", fb));
  EXPECT_EQ(SimdLevel::kAvx2, SimdLevelFromName("avx2", fb));
  EXPECT_EQ(SimdMaxSupported(), SimdLevelFromName("native", fb));
  EXPECT_EQ(SimdMaxSupported(), SimdLevelFromName("best", fb));
  EXPECT_EQ(SimdMaxSupported(), SimdLevelFromName("max", fb));
  // Unknown / empty / null keep the fallback.
  EXPECT_EQ(SimdLevel::kSse2,
            SimdLevelFromName("avx512-nope", SimdLevel::kSse2));
  EXPECT_EQ(SimdLevel::kSse2, SimdLevelFromName("", SimdLevel::kSse2));
  EXPECT_EQ(SimdLevel::kSse2, SimdLevelFromName(nullptr, SimdLevel::kSse2));
}

TEST(SimdDispatchTest, SetDispatchClampsToSupport) {
  const SimdLevel saved = SimdDispatchLevel();
  const SimdLevel applied = SimdSetDispatch(SimdLevel::kAvx2);
  EXPECT_LE(applied, SimdMaxSupported());
  EXPECT_EQ(applied, SimdDispatchLevel());
  EXPECT_EQ(SimdLevel::kScalar, SimdSetDispatch(SimdLevel::kScalar));
  EXPECT_EQ(SimdLevel::kScalar, SimdDispatchLevel());
  SimdSetDispatch(saved);
}

TEST(SimdPrimitiveTest, PrefixSumMatchesScalar) {
  for (const SimdLevel level : AvailableLevels()) {
    for (const size_t n : kSizes) {
      Rng rng(n * 31 + static_cast<uint64_t>(level));
      std::vector<int32_t> ref(n);
      for (auto& v : ref) {
        v = static_cast<int32_t>(rng.UniformRange(-1000, 1000));
      }
      std::vector<int32_t> got = ref;
      SimdPrefixSumI32(SimdLevel::kScalar, ref.data(), n);
      SimdPrefixSumI32(level, got.data(), n);
      ASSERT_EQ(ref, got) << SimdLevelName(level) << " n=" << n;
    }
  }
}

TEST(SimdPrimitiveTest, NeqFlagsMatchesScalar) {
  for (const SimdLevel level : AvailableLevels()) {
    for (const size_t n : kSizes) {
      if (n == 0) continue;
      Rng rng(n * 57 + static_cast<uint64_t>(level));
      // Sorted with many duplicates — the kernel's actual input shape —
      // but correctness must not depend on sortedness; mix both.
      for (const bool sorted : {true, false}) {
        std::vector<int64_t> t(n);
        int64_t run = rng.UniformRange(-50, 50);
        for (auto& v : t) {
          run += sorted ? rng.UniformRange(0, 3) : rng.UniformRange(-3, 4);
          v = run;
        }
        std::vector<int32_t> ref(n), got(n);
        SimdNeqFlagsI64(SimdLevel::kScalar, t.data(), n, ref.data());
        SimdNeqFlagsI64(level, t.data(), n, got.data());
        ASSERT_EQ(ref, got) << SimdLevelName(level) << " n=" << n;
      }
    }
  }
}

TEST(SimdPrimitiveTest, ClipMatchesScalarIncludingExtremes) {
  for (const SimdLevel level : AvailableLevels()) {
    for (const size_t n : kSizes) {
      Rng rng(n * 101 + static_cast<uint64_t>(level));
      std::vector<int64_t> s(n), e(n);
      for (size_t i = 0; i < n; ++i) {
        // Sprinkle open-ended sentinels among ordinary values.
        const uint64_t kind = rng.Uniform(5);
        s[i] = kind == 0 ? kTimeMin : rng.UniformRange(-100, 100);
        e[i] = kind == 1 ? kTimeMax : rng.UniformRange(-100, 100);
      }
      const int64_t lo = rng.UniformRange(-40, 0);
      const int64_t hi = rng.UniformRange(1, 40);
      std::vector<int64_t> rcs(n), rce(n), gcs(n), gce(n);
      SimdClipI64(SimdLevel::kScalar, s.data(), e.data(), n, lo, hi,
                  rcs.data(), rce.data());
      SimdClipI64(level, s.data(), e.data(), n, lo, hi, gcs.data(),
                  gce.data());
      ASSERT_EQ(rcs, gcs) << SimdLevelName(level) << " n=" << n;
      ASSERT_EQ(rce, gce) << SimdLevelName(level) << " n=" << n;
    }
  }
}

TEST(SimdPrimitiveTest, GatherKeysMatchesScalar) {
  struct Rec {
    int64_t key;
    uint32_t tag;
  };
  static_assert(sizeof(Rec) == 16);
  for (const SimdLevel level : AvailableLevels()) {
    for (const size_t n : kSizes) {
      Rng rng(n * 7 + static_cast<uint64_t>(level));
      std::vector<Rec> recs(n);
      for (size_t i = 0; i < n; ++i) {
        recs[i] = {static_cast<int64_t>(rng.Next()),
                   static_cast<uint32_t>(rng.Next())};
      }
      std::vector<int64_t> ref(n), got(n);
      SimdGatherKeysI64(SimdLevel::kScalar, recs.data(), n, ref.data());
      SimdGatherKeysI64(level, recs.data(), n, got.data());
      ASSERT_EQ(ref, got) << SimdLevelName(level) << " n=" << n;
    }
  }
}

TEST(SimdPrimitiveTest, IsSortedMatchesScalar) {
  for (const SimdLevel level : AvailableLevels()) {
    for (const size_t n : kSizes) {
      Rng rng(n * 13 + static_cast<uint64_t>(level));
      std::vector<int64_t> a(n);
      int64_t run = rng.UniformRange(-10, 10);
      for (auto& v : a) {
        run += rng.UniformRange(0, 4);  // non-decreasing, with ties
        v = run;
      }
      EXPECT_TRUE(SimdIsSortedI64(level, a.data(), n))
          << SimdLevelName(level) << " n=" << n;
      // A single violation anywhere must be caught.
      for (size_t at = 1; at < n; ++at) {
        std::vector<int64_t> bad = a;
        bad[at] = bad[at - 1] - 1;
        // Re-check: the suffix may still make it unsorted — which is the
        // point; any violation must flip the answer.
        EXPECT_FALSE(SimdIsSortedI64(level, bad.data(), n))
            << SimdLevelName(level) << " n=" << n << " at=" << at;
      }
    }
  }
}

}  // namespace
}  // namespace graphite
