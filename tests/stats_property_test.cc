// Property tests for the Table-1 statistics: the sweep-line results must
// equal brute-force per-snapshot counting, on randomized graphs.
#include <gtest/gtest.h>

#include "algorithms/runners.h"
#include "graph/graph_stats.h"
#include "graph/snapshot.h"
#include "testutil.h"

namespace graphite {
namespace {

class GraphStatsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphStatsPropertyTest, SweepMatchesBruteForce) {
  testutil::RandomGraphOptions opt;
  opt.num_vertices = 30;
  opt.num_edges = 90;
  const TemporalGraph g = testutil::MakeRandomGraph(GetParam(), opt);
  const GraphStats s = ComputeGraphStats(g, /*include_transformed=*/false);

  size_t max_v = 0, max_e = 0, sum_v = 0, sum_e = 0;
  for (TimePoint t = 0; t < g.horizon(); ++t) {
    size_t nv, ne;
    SnapshotView(&g, t).CountActive(&nv, &ne);
    max_v = std::max(max_v, nv);
    max_e = std::max(max_e, ne);
    sum_v += nv;
    sum_e += ne;
  }
  EXPECT_EQ(s.largest_snapshot_v, max_v);
  EXPECT_EQ(s.largest_snapshot_e, max_e);
  EXPECT_EQ(s.multi_snapshot_v, sum_v);
  EXPECT_EQ(s.multi_snapshot_e, sum_e);
  EXPECT_EQ(s.interval_v, g.num_vertices());
  EXPECT_EQ(s.interval_e, g.num_edges());
  EXPECT_GE(s.avg_vertex_lifespan, 1.0);
  EXPECT_GE(s.avg_edge_lifespan, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphStatsPropertyTest,
                         ::testing::Values(1001, 1002, 1003, 1004));

TEST(RunnersTest, SupportMatrixMatchesPaper) {
  // TI: ICM + MSB + CHL; TD: ICM + TGB + GOF (paper §VII-A3).
  for (Algorithm a : kAllAlgorithms) {
    EXPECT_TRUE(Supports(Platform::kIcm, a));
    EXPECT_EQ(Supports(Platform::kMsb, a), !IsTimeDependent(a));
    EXPECT_EQ(Supports(Platform::kChl, a), !IsTimeDependent(a));
    EXPECT_EQ(Supports(Platform::kTgb, a), IsTimeDependent(a));
    EXPECT_EQ(Supports(Platform::kGof, a), IsTimeDependent(a));
  }
  int td = 0, ti = 0;
  for (Algorithm a : kAllAlgorithms) (IsTimeDependent(a) ? td : ti)++;
  EXPECT_EQ(ti, 4);  // BFS, WCC, SCC, PR.
  EXPECT_EQ(td, 8);  // SSSP, EAT, FAST, LD, TMST, RH, LCC, TC.
}

TEST(RunnersTest, NamesAreStable) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kSssp), "SSSP");
  EXPECT_STREQ(AlgorithmName(Algorithm::kLcc), "LCC");
  EXPECT_STREQ(PlatformName(Platform::kIcm), "ICM");
  EXPECT_STREQ(PlatformName(Platform::kGof), "GOF");
}

TEST(RunnersTest, RunForMetricsCoversEverySupportedPair) {
  testutil::RandomGraphOptions opt;
  opt.num_vertices = 16;
  opt.num_edges = 40;
  opt.horizon = 6;
  Workload w(testutil::MakeRandomGraph(555, opt));
  RunConfig config;
  config.num_workers = 2;
  int runs = 0;
  for (Algorithm a : kAllAlgorithms) {
    for (Platform p : {Platform::kIcm, Platform::kMsb, Platform::kChl,
                       Platform::kTgb, Platform::kGof}) {
      if (!Supports(p, a)) continue;
      const RunMetrics m = RunForMetrics(w, p, a, config);
      EXPECT_GE(m.supersteps, 1) << AlgorithmName(a) << PlatformName(p);
      EXPECT_GT(m.compute_calls, 0) << AlgorithmName(a) << PlatformName(p);
      ++runs;
    }
  }
  EXPECT_EQ(runs, 4 * 3 + 8 * 3);  // 12 algorithms x 3 platforms each.
}

}  // namespace
}  // namespace graphite
