// Tests for the streaming ingestion layer (§VIII extension): constraint
// enforcement on live updates, lifespan closing, property runs, sealing,
// and equivalence of sealed graphs with batch-built ones.
#include "stream/update_stream.h"

#include <gtest/gtest.h>

#include "algorithms/icm_path.h"
#include "icm/icm_engine.h"
#include "testutil.h"

namespace graphite {
namespace {

TEST(StreamingBuilderTest, BasicLifecycle) {
  StreamingGraphBuilder b;
  ASSERT_TRUE(b.Apply(GraphUpdate::AddVertex(0, 1)).ok());
  ASSERT_TRUE(b.Apply(GraphUpdate::AddVertex(0, 2)).ok());
  ASSERT_TRUE(b.Apply(GraphUpdate::AddEdge(2, 10, 1, 2)).ok());
  ASSERT_TRUE(b.Apply(GraphUpdate::SetEdgeProp(2, 10, "w", 5)).ok());
  ASSERT_TRUE(b.Apply(GraphUpdate::SetEdgeProp(4, 10, "w", 7)).ok());
  ASSERT_TRUE(b.Apply(GraphUpdate::RemoveEdge(6, 10)).ok());
  EXPECT_EQ(b.num_live_vertices(), 2u);
  EXPECT_EQ(b.num_live_edges(), 0u);

  auto g = b.Seal(10);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_vertices(), 2u);
  EXPECT_EQ(g->num_edges(), 1u);
  const StoredEdge& e = g->edge(0);
  EXPECT_EQ(e.interval, Interval(2, 6));
  const auto label = g->LabelIdOf("w");
  ASSERT_TRUE(label.has_value());
  const auto* prop = g->EdgeProperty(0, *label);
  ASSERT_NE(prop, nullptr);
  EXPECT_EQ(prop->Get(3), 5);   // First run [2, 4).
  EXPECT_EQ(prop->Get(4), 7);   // Second run [4, 6).
  EXPECT_EQ(prop->Get(6), std::nullopt);  // Edge dead.
}

TEST(StreamingBuilderTest, RejectsOutOfOrderEvents) {
  StreamingGraphBuilder b;
  ASSERT_TRUE(b.Apply(GraphUpdate::AddVertex(5, 1)).ok());
  EXPECT_FALSE(b.Apply(GraphUpdate::AddVertex(3, 2)).ok());
}

TEST(StreamingBuilderTest, RejectsReoccurringIds) {
  StreamingGraphBuilder b;
  ASSERT_TRUE(b.Apply(GraphUpdate::AddVertex(0, 1)).ok());
  ASSERT_TRUE(b.Apply(GraphUpdate::RemoveVertex(3, 1)).ok());
  // Constraint 1: an id can never re-occur.
  EXPECT_EQ(b.Apply(GraphUpdate::AddVertex(5, 1)).code(),
            StatusCode::kConstraintViolation);
}

TEST(StreamingBuilderTest, RejectsEdgesOnDeadEndpoints) {
  StreamingGraphBuilder b;
  ASSERT_TRUE(b.Apply(GraphUpdate::AddVertex(0, 1)).ok());
  ASSERT_TRUE(b.Apply(GraphUpdate::AddVertex(0, 2)).ok());
  ASSERT_TRUE(b.Apply(GraphUpdate::RemoveVertex(3, 2)).ok());
  EXPECT_EQ(b.Apply(GraphUpdate::AddEdge(4, 10, 1, 2)).code(),
            StatusCode::kConstraintViolation);
  EXPECT_FALSE(b.Apply(GraphUpdate::AddEdge(4, 11, 1, 99)).ok());
}

TEST(StreamingBuilderTest, VertexRemovalRetiresIncidentEdges) {
  StreamingGraphBuilder b;
  ASSERT_TRUE(b.Apply(GraphUpdate::AddVertex(0, 1)).ok());
  ASSERT_TRUE(b.Apply(GraphUpdate::AddVertex(0, 2)).ok());
  ASSERT_TRUE(b.Apply(GraphUpdate::AddEdge(1, 10, 1, 2)).ok());
  ASSERT_TRUE(b.Apply(GraphUpdate::RemoveVertex(5, 2)).ok());
  EXPECT_EQ(b.num_live_edges(), 0u);
  auto g = b.Seal(8);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->edge(0).interval, Interval(1, 5));  // Closed with vertex 2.
}

TEST(StreamingBuilderTest, RejectsPropertyOnMissingEntity) {
  StreamingGraphBuilder b;
  EXPECT_FALSE(b.Apply(GraphUpdate::SetVertexProp(0, 9, "x", 1)).ok());
  EXPECT_FALSE(b.Apply(GraphUpdate::SetEdgeProp(0, 9, "x", 1)).ok());
}

TEST(StreamingBuilderTest, SealRequiresFutureHorizon) {
  StreamingGraphBuilder b;
  ASSERT_TRUE(b.Apply(GraphUpdate::AddVertex(5, 1)).ok());
  EXPECT_FALSE(b.Seal(5).ok());
  EXPECT_TRUE(b.Seal(6).ok());
}

TEST(StreamingBuilderTest, SealedSyntheticStreamsAlwaysValidate) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const auto stream = SyntheticUpdateStream(seed, 20, 150, 12);
    StreamingGraphBuilder b;
    ASSERT_TRUE(b.ApplyAll(stream).ok());
    auto g = b.Seal(12);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    EXPECT_GT(g->num_edges(), 0u);
  }
}

// A sealed stream is a first-class ICM input: run SSSP over it and check
// basic sanity (source cost 0, all finite costs reachable via edges).
TEST(StreamingBuilderTest, SealedGraphRunsIcm) {
  const auto stream = SyntheticUpdateStream(7, 25, 200, 12);
  StreamingGraphBuilder b;
  ASSERT_TRUE(b.ApplyAll(stream).ok());
  auto g = b.Seal(12);
  ASSERT_TRUE(g.ok());
  IcmSssp program(*g, 0);
  auto result = IcmEngine<IcmSssp>::Run(*g, program);
  const VertexIdx src = *g->IndexOf(0);
  EXPECT_EQ(result.states[src].entries().front().value, 0);
}

// Incremental sealing: sealing at an earlier horizon equals building only
// the prefix of the stream (pause-and-process semantics).
TEST(StreamingBuilderTest, MidStreamSealMatchesPrefixBuild) {
  const auto stream = SyntheticUpdateStream(11, 15, 120, 12);
  StreamingGraphBuilder full;
  StreamingGraphBuilder prefix;
  size_t split = 0;
  while (split < stream.size() && stream[split].time < 6) ++split;
  for (size_t i = 0; i < split; ++i) {
    ASSERT_TRUE(full.Apply(stream[i]).ok());
    ASSERT_TRUE(prefix.Apply(stream[i]).ok());
  }
  auto a = full.Seal(6);
  auto b = prefix.Seal(6);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->num_vertices(), b->num_vertices());
  EXPECT_EQ(a->num_edges(), b->num_edges());
  // And the sealer is non-destructive: keep streaming afterwards.
  for (size_t i = split; i < stream.size(); ++i) {
    ASSERT_TRUE(full.Apply(stream[i]).ok());
  }
  EXPECT_TRUE(full.Seal(12).ok());
}

}  // namespace
}  // namespace graphite
