// Shared test fixtures: the paper's Fig. 1 transit network and random
// temporal-graph generation for property tests.
#ifndef GRAPHITE_TESTS_TESTUTIL_H_
#define GRAPHITE_TESTS_TESTUTIL_H_

#include "algorithms/common.h"
#include "graph/builder.h"
#include "graph/temporal_graph.h"
#include "util/rng.h"

namespace graphite {
namespace testutil {

// Vertex ids of the Fig. 1 transit network.
inline constexpr VertexId kA = 0, kB = 1, kC = 2, kD = 3, kE = 4, kF = 5;

/// The paper's Fig. 1(a) transit network, reconstructed from the worked
/// SSSP example (§I intro, Alg. 1 walk-through, and the §IV-B warp
/// example). All vertices live [0, inf); travel time is 1 on every edge.
///   A->B  cost 4 on [3,5), cost 3 on [5,6)  (A's scatter runs twice)
///   A->C  cost 3 on [1,2)                   (A1 -> C2, cost 3)
///   A->D  cost 2 on [2,4)                   (D reachable, cost 2)
///   C->E  cost 4 on [5,6)                   (C5 -> E6, total 7)
///   B->E  cost 2 on [8,9)                   (B8 -> E9, total 5)
///   D->F  cost 1 on [1,2)                   (F unreachable from A: D is
///                                            reached only from t>=3)
/// Expected SSSP-from-A fixpoint (paper): B costs 4 then 3 over two
/// intervals; C cost 3; D cost 2; E costs 7 then 5; F unreached.
inline TemporalGraph MakeTransitGraph() {
  TemporalGraphBuilder b;
  const Interval forever(0, kTimeMax);
  for (VertexId v : {kA, kB, kC, kD, kE, kF}) b.AddVertex(v, forever);

  auto edge = [&b](EdgeId eid, VertexId s, VertexId d, TimePoint t0,
                   TimePoint t1, PropValue cost) {
    b.AddEdge(eid, s, d, Interval(t0, t1));
    b.SetEdgeProperty(eid, kTravelTimeLabel, Interval(t0, t1), 1);
    b.SetEdgeProperty(eid, kTravelCostLabel, Interval(t0, t1), cost);
  };
  // A->B is ONE edge with lifespan [3,6) and a cost property that changes
  // value at t=5, exactly as in the paper's superstep-1 narration.
  b.AddEdge(10, kA, kB, Interval(3, 6));
  b.SetEdgeProperty(10, kTravelTimeLabel, Interval(3, 6), 1);
  b.SetEdgeProperty(10, kTravelCostLabel, Interval(3, 5), 4);
  b.SetEdgeProperty(10, kTravelCostLabel, Interval(5, 6), 3);

  edge(11, kA, kC, 1, 2, 3);
  edge(12, kA, kD, 2, 4, 2);
  edge(13, kC, kE, 5, 6, 4);
  edge(14, kB, kE, 8, 9, 2);
  edge(15, kD, kF, 1, 2, 1);

  BuilderOptions options;
  options.horizon = 10;
  auto g = b.Build(options);
  GRAPHITE_CHECK(g.ok());
  return std::move(g).value();
}

/// Options for random temporal multi-graphs used in cross-platform
/// equivalence tests.
struct RandomGraphOptions {
  int num_vertices = 24;
  int num_edges = 60;
  TimePoint horizon = 12;
  /// Probability an entity lifespan is unit-length (GPlus-like mix).
  double unit_lifespan_prob = 0.3;
  /// Probability a vertex lives for the whole horizon.
  double full_lifespan_prob = 0.5;
  /// Maximum travel-time property value (>=1).
  TimePoint max_travel_time = 3;
  /// Maximum travel-cost property value (>=1).
  PropValue max_cost = 9;
  /// Number of property segments per edge (cost varies over time).
  int prop_segments = 2;
  bool with_properties = true;
};

/// Deterministic random temporal graph satisfying Constraints 1-3.
inline TemporalGraph MakeRandomGraph(uint64_t seed,
                                     const RandomGraphOptions& opt = {}) {
  Rng rng(seed);
  TemporalGraphBuilder b;
  std::vector<Interval> spans(opt.num_vertices);
  for (int v = 0; v < opt.num_vertices; ++v) {
    Interval span;
    if (rng.Bernoulli(opt.full_lifespan_prob)) {
      span = Interval(0, opt.horizon);
    } else {
      const TimePoint s = rng.UniformRange(0, opt.horizon - 1);
      const TimePoint e = rng.Bernoulli(opt.unit_lifespan_prob)
                              ? s + 1
                              : rng.UniformRange(s + 1, opt.horizon + 1);
      span = Interval(s, e);
    }
    spans[v] = span;
    b.AddVertex(v, span);
  }
  int added = 0;
  int attempts = 0;
  while (added < opt.num_edges && attempts < opt.num_edges * 20) {
    ++attempts;
    const int u = static_cast<int>(rng.Uniform(opt.num_vertices));
    const int v = static_cast<int>(rng.Uniform(opt.num_vertices));
    if (u == v) continue;
    const Interval overlap = spans[u].Intersect(spans[v]);
    if (overlap.IsEmpty()) continue;
    TimePoint s, e;
    if (rng.Bernoulli(opt.unit_lifespan_prob)) {
      s = rng.UniformRange(overlap.start, overlap.end);
      e = s + 1;
    } else {
      s = rng.UniformRange(overlap.start, overlap.end);
      e = rng.UniformRange(s + 1, overlap.end + 1);
    }
    const EdgeId eid = 1000 + added;
    b.AddEdge(eid, u, v, Interval(s, e));
    if (opt.with_properties) {
      // Piecewise travel-time / travel-cost over the edge lifespan.
      const int segments =
          1 + static_cast<int>(rng.Uniform(
                  static_cast<uint64_t>(opt.prop_segments)));
      TimePoint t = s;
      for (int k = 0; k < segments && t < e; ++k) {
        const TimePoint end = (k == segments - 1)
                                  ? e
                                  : rng.UniformRange(t + 1, e + 1);
        b.SetEdgeProperty(eid, kTravelTimeLabel, Interval(t, end),
                          1 + rng.UniformRange(0, opt.max_travel_time));
        b.SetEdgeProperty(eid, kTravelCostLabel, Interval(t, end),
                          1 + rng.UniformRange(0, opt.max_cost));
        t = end;
      }
    }
    ++added;
  }
  BuilderOptions options;
  options.horizon = opt.horizon;
  auto g = b.Build(options);
  GRAPHITE_CHECK(g.ok());
  return std::move(g).value();
}

}  // namespace testutil
}  // namespace graphite

#endif  // GRAPHITE_TESTS_TESTUTIL_H_
