// Tests for the time-expanded transformed graph (TGB substrate).
#include "graph/transformed_graph.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace graphite {
namespace {

TEST(TransformedGraphTest, TransitGraphUnrolls) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  const TransformedGraph tg = BuildTransformedGraph(g);

  // A's replicas: departure times of its out-edges = {1,2,3,4,5}.
  const VertexIdx a = *g.IndexOf(testutil::kA);
  auto a_reps = tg.ReplicasOf(a);
  ASSERT_EQ(a_reps.size(), 5u);
  EXPECT_EQ(tg.replica_time(a_reps.front()), 1);
  EXPECT_EQ(tg.replica_time(a_reps.back()), 5);

  // B: arrivals {4,5,6} from A, departure {8} on B->E.
  const VertexIdx b = *g.IndexOf(testutil::kB);
  auto b_reps = tg.ReplicasOf(b);
  ASSERT_EQ(b_reps.size(), 4u);
  EXPECT_EQ(tg.replica_time(b_reps[0]), 4);
  EXPECT_EQ(tg.replica_time(b_reps[3]), 8);

  // Chain edges connect consecutive replicas of one vertex.
  EXPECT_GT(tg.num_chain_edges(), 0u);
  int chains = 0;
  for (const auto& e : tg.OutEdges(b_reps[0])) {
    if (e.is_chain) {
      EXPECT_EQ(tg.replica_vertex(e.dst), b);
      EXPECT_EQ(tg.replica_time(e.dst), 5);
      ++chains;
    }
  }
  EXPECT_EQ(chains, 1);
}

TEST(TransformedGraphTest, TransitEdgesCarryCostAndTime) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  const TransformedGraph tg = BuildTransformedGraph(g);
  const VertexIdx a = *g.IndexOf(testutil::kA);
  const VertexIdx b = *g.IndexOf(testutil::kB);
  // A@4 -> B@5 costs 4 (property [3,5)); A@5 -> B@6 costs 3 ([5,6)).
  const ReplicaIdx a4 = tg.ReplicaAt(a, 4);
  ASSERT_NE(a4, kInvalidReplica);
  bool found = false;
  for (const auto& e : tg.OutEdges(a4)) {
    if (!e.is_chain && tg.replica_vertex(e.dst) == b) {
      EXPECT_EQ(tg.replica_time(e.dst), 5);
      EXPECT_EQ(e.cost, 4);
      EXPECT_EQ(e.travel_time, 1);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  const ReplicaIdx a5 = tg.ReplicaAt(a, 5);
  for (const auto& e : tg.OutEdges(a5)) {
    if (!e.is_chain && tg.replica_vertex(e.dst) == b) {
      EXPECT_EQ(e.cost, 3);
    }
  }
}

TEST(TransformedGraphTest, ReplicaLookups) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  const TransformedGraph tg = BuildTransformedGraph(g);
  const VertexIdx a = *g.IndexOf(testutil::kA);
  EXPECT_EQ(tg.ReplicaAt(a, 0), kInvalidReplica);
  EXPECT_NE(tg.ReplicaAt(a, 3), kInvalidReplica);
  EXPECT_EQ(tg.replica_time(tg.FirstReplicaAtOrAfter(a, 0)), 1);
  EXPECT_EQ(tg.replica_time(tg.LastReplicaAtOrBefore(a, 10)), 5);
  EXPECT_EQ(tg.FirstReplicaAtOrAfter(a, 6), kInvalidReplica);
  EXPECT_EQ(tg.LastReplicaAtOrBefore(a, 0), kInvalidReplica);
}

TEST(TransformedGraphTest, CountMatchesBuild) {
  for (uint64_t seed : {5u, 6u, 7u}) {
    const TemporalGraph g = testutil::MakeRandomGraph(seed);
    const TransformedGraph tg = BuildTransformedGraph(g);
    size_t replicas = 0, edges = 0;
    CountTransformedGraph(g, TransformOptions(), &replicas, &edges);
    EXPECT_EQ(replicas, tg.num_replicas());
    EXPECT_EQ(edges, tg.num_edges());
  }
}

TEST(TransformedGraphTest, BloatGrowsWithLifespan) {
  // The transformed graph of a long-lifespan graph is much larger than the
  // interval graph — the TGB pathology (Table 1, §VII-B4).
  testutil::RandomGraphOptions opt;
  opt.unit_lifespan_prob = 0.0;
  opt.full_lifespan_prob = 1.0;
  opt.horizon = 20;
  const TemporalGraph g = testutil::MakeRandomGraph(9, opt);
  const TransformedGraph tg = BuildTransformedGraph(g);
  EXPECT_GT(tg.num_replicas(), 4 * g.num_vertices());
  EXPECT_GT(tg.num_edges(), 4 * g.num_edges());
  EXPECT_GT(tg.MemoryFootprintBytes(), g.MemoryFootprintBytes());
}

TEST(TransformedGraphTest, ForcedZeroTravelTimeConnectsSameTime) {
  const TemporalGraph g = testutil::MakeRandomGraph(11);
  TransformOptions options;
  options.forced_travel_time = 0;
  const TransformedGraph tg = BuildTransformedGraph(g, options);
  for (ReplicaIdx r = 0; r < tg.num_replicas(); ++r) {
    for (const auto& e : tg.OutEdges(r)) {
      if (!e.is_chain) {
        EXPECT_EQ(tg.replica_time(e.dst), tg.replica_time(r));
      }
    }
  }
}

TEST(TransformedGraphTest, ArrivalsOutsideSinkLifespanDropped) {
  TemporalGraphBuilder b;
  b.AddVertex(1, Interval(0, 10));
  b.AddVertex(2, Interval(0, 5));
  b.AddEdge(1, 1, 2, Interval(3, 5));
  b.SetEdgeProperty(1, "travel-time", Interval(3, 5), 2);
  auto g = std::move(b.Build()).value();
  const TransformedGraph tg = BuildTransformedGraph(g);
  // Departures at 3 and 4 arrive at 5 and 6 — both outside vertex 2's
  // lifespan [0,5), so vertex 2 gets no replicas and no transit edges.
  EXPECT_EQ(tg.ReplicasOf(*g.IndexOf(2)).size(), 0u);
  EXPECT_EQ(tg.num_edges(), tg.num_chain_edges());
}

}  // namespace
}  // namespace graphite
