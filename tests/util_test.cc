// Tests for the utility layer: Status/Result, varint codec, serde
// buffers, RNG determinism, statistics and the interval wire format.
#include <gtest/gtest.h>

#include "icm/message.h"
#include "util/rng.h"
#include "util/serde.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/varint.h"

namespace graphite {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  const Status s = Status::ConstraintViolation("boom");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(s.ToString(), "ConstraintViolation: boom");
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  Result<int> err(Status::NotFound("nope"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(VarintTest, RoundTripBoundaries) {
  const uint64_t cases[] = {0,     1,     127,
                            128,   16383, 16384,
                            (1ull << 32) - 1, 1ull << 62,
                            std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint64(&buf, v);
    EXPECT_EQ(buf.size(), VarintLength(v));
    size_t pos = 0;
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(buf, &pos, &out));
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, TruncatedInputRejected) {
  std::string buf;
  PutVarint64(&buf, 300);
  buf.pop_back();
  size_t pos = 0;
  uint64_t out;
  EXPECT_FALSE(GetVarint64(buf, &pos, &out));
}

TEST(VarintTest, ZigZagSigned) {
  const int64_t cases[] = {0,  -1, 1, -64, 64,
                           std::numeric_limits<int64_t>::min(),
                           std::numeric_limits<int64_t>::max()};
  for (int64_t v : cases) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
    std::string buf;
    PutVarint64Signed(&buf, v);
    size_t pos = 0;
    int64_t out = 0;
    ASSERT_TRUE(GetVarint64Signed(buf, &pos, &out));
    EXPECT_EQ(out, v);
  }
  // Small magnitudes must stay small on the wire.
  std::string buf;
  PutVarint64Signed(&buf, -3);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(SerdeTest, WriterReaderRoundTrip) {
  Writer w;
  w.WriteU64(12345);
  w.WriteI64(-987);
  w.WriteByte(7);
  w.WriteBytes("hello");
  w.WriteI64Vec({1, -2, 3});
  Reader r(w.buffer());
  EXPECT_EQ(r.ReadU64(), 12345u);
  EXPECT_EQ(r.ReadI64(), -987);
  EXPECT_EQ(r.ReadByte(), 7);
  EXPECT_EQ(r.ReadBytes(), "hello");
  EXPECT_EQ(r.ReadI64Vec(), (std::vector<int64_t>{1, -2, 3}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(IntervalCodecTest, RoundTripAllShapes) {
  Writer w;
  const Interval cases[] = {
      Interval(3, 9),          Interval(5, 6),
      Interval(7, kTimeMax),   Interval(kTimeMin, 4),
      Interval(kTimeMin, kTimeMax), Interval(-100, 100),
      Interval(0, 1)};
  for (const Interval& iv : cases) WriteInterval(w, iv);
  Reader r(w.buffer());
  for (const Interval& iv : cases) {
    EXPECT_EQ(ReadInterval(r), iv);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(IntervalCodecTest, CompactShapesBeatFixedWidth) {
  // §VI: unit-length and open-ended intervals carry one endpoint + flag;
  // small generic intervals varint-compress. All beat the 16-byte fixed
  // representation the paper's 59-78% reduction is against.
  EXPECT_LE(IntervalWireSize(Interval(5, 6)), 3u);
  EXPECT_LE(IntervalWireSize(Interval(9, kTimeMax)), 3u);
  EXPECT_LE(IntervalWireSize(Interval(kTimeMin, 9)), 3u);
  EXPECT_LT(IntervalWireSize(Interval(100, 200)), kFixedIntervalWireSize);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LT(v, 5);
  }
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(7);
  int low = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Zipf(1000, 0.9) < 100) ++low;
  }
  // With alpha 0.9, far more than 10% of mass lands in the first decile.
  EXPECT_GT(low, kDraws / 4);
}

TEST(StatsTest, MeanAndGeoMean) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(GeoMean({4, 1}), 2.0);
  EXPECT_EQ(Mean({}), 0.0);
}

TEST(StatsTest, LinearFitPerfectLine) {
  const LinearFit fit = FitLinear({1, 2, 3, 4}, {3, 5, 7, 9});
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(StatsTest, LinearFitNoise) {
  const LinearFit fit = FitLinear({1, 2, 3, 4}, {2, 1, 2, 1});
  EXPECT_LT(fit.r2, 0.5);
}

TEST(StatsTest, TextTableAligns) {
  TextTable t;
  t.AddRow({"name", "value"});
  t.AddRow({"x", "12345"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(StatsTest, FormatCountSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
  EXPECT_EQ(FormatCount(-1234), "-1,234");
}

}  // namespace
}  // namespace graphite
