// Tests for the VCM (Pregel) engine substrate: activation semantics,
// message delivery across workers, halting, always-active mode, initial
// messages, and metrics plumbing.
#include "vcm/vcm_engine.h"

#include <gtest/gtest.h>

#include "engine/metrics.h"
#include "testutil.h"
#include "vcm/adapters.h"

namespace graphite {
namespace {

// A line graph adapter: units 0..n-1, edge i -> i+1, unit i partitioned
// by its own index.
class LineAdapter {
 public:
  explicit LineAdapter(uint32_t n) : n_(n) {}
  size_t NumUnits() const { return n_; }
  bool UnitExists(uint32_t) const { return true; }
  int64_t PartitionId(uint32_t u) const { return u; }
  uint32_t next(uint32_t u) const { return u + 1; }
  bool has_next(uint32_t u) const { return u + 1 < n_; }

 private:
  uint32_t n_;
};

// Forwards a counter down the line, one hop per superstep.
struct LineProgram {
  using Value = int64_t;
  using Message = int64_t;
  const LineAdapter* adapter;

  Value Init(uint32_t) const { return -1; }

  void Compute(VcmContext<Message>& ctx, uint32_t u, Value& val,
               std::span<const Message> msgs) {
    if (ctx.superstep() == 0) {
      if (u != 0) return;
      val = 0;
    } else {
      if (msgs.empty()) return;
      val = msgs[0];
    }
    if (adapter->has_next(u)) ctx.Send(adapter->next(u), val + 1);
  }
};

TEST(VcmEngineTest, PropagatesAlongLineAndHalts) {
  LineAdapter adapter(10);
  LineProgram program{&adapter};
  std::vector<int64_t> values;
  const RunMetrics m = RunVcm(adapter, program, VcmOptions{}, &values);
  for (uint32_t u = 0; u < 10; ++u) {
    EXPECT_EQ(values[u], static_cast<int64_t>(u));
  }
  // Superstep 0 runs all units; then one hop per superstep; the final
  // superstep delivers nothing and the engine halts.
  EXPECT_EQ(m.supersteps, 10);
  EXPECT_EQ(m.messages, 9);
  // Superstep 0 computes all 10 units; each later superstep exactly 1.
  EXPECT_EQ(m.compute_calls, 10 + 9);
  EXPECT_GT(m.message_bytes, 0);
}

TEST(VcmEngineTest, ResultsIndependentOfWorkersAndThreads) {
  LineAdapter adapter(23);
  for (int workers : {1, 2, 7}) {
    for (bool threads : {false, true}) {
      LineProgram program{&adapter};
      VcmOptions options;
      options.num_workers = workers;
      options.use_threads = threads;
      std::vector<int64_t> values;
      const RunMetrics m = RunVcm(adapter, program, options, &values);
      for (uint32_t u = 0; u < 23; ++u) {
        ASSERT_EQ(values[u], static_cast<int64_t>(u));
      }
      EXPECT_EQ(m.messages, 22);
    }
  }
}

// Counts compute invocations in always-active mode.
struct CountingProgram {
  using Value = int64_t;
  using Message = int64_t;
  Value Init(uint32_t) const { return 0; }
  void Compute(VcmContext<Message>& ctx, uint32_t, Value& val,
               std::span<const Message>) {
    (void)ctx;
    ++val;
  }
};

TEST(VcmEngineTest, AlwaysActiveRunsFixedSupersteps) {
  LineAdapter adapter(5);
  CountingProgram program;
  VcmOptions options;
  options.always_active = true;
  options.max_supersteps = 7;
  std::vector<int64_t> values;
  const RunMetrics m = RunVcm(adapter, program, options, &values);
  EXPECT_EQ(m.supersteps, 7);
  for (uint32_t u = 0; u < 5; ++u) EXPECT_EQ(values[u], 7);
}

TEST(VcmEngineTest, InitialMessagesSeedSuperstepZero) {
  LineAdapter adapter(6);
  struct SeedProgram {
    using Value = int64_t;
    using Message = int64_t;
    Value Init(uint32_t) const { return 0; }
    void Compute(VcmContext<Message>&, uint32_t, Value& val,
                 std::span<const Message> msgs) {
      for (const Message& msg : msgs) val += msg;
    }
  } program;
  std::vector<std::pair<uint32_t, int64_t>> seeds = {{2, 50}, {2, 7}, {4, 1}};
  std::vector<int64_t> values;
  RunVcm(adapter, program, VcmOptions{}, &values, seeds);
  EXPECT_EQ(values[2], 57);
  EXPECT_EQ(values[4], 1);
  EXPECT_EQ(values[0], 0);
}

TEST(VcmEngineTest, SnapshotAdapterSkipsInactiveUnits) {
  const TemporalGraph g = testutil::MakeTransitGraph();
  SnapshotAdapter adapter{SnapshotView(&g, 4)};
  CountingProgram program;
  VcmOptions options;
  options.always_active = true;
  options.max_supersteps = 1;
  std::vector<int64_t> values;
  const RunMetrics m = RunVcm(adapter, program, options, &values);
  EXPECT_EQ(m.compute_calls, 6);  // All transit vertices are perpetual.
}

TEST(MetricsTest, AccumulateAndMerge) {
  RunMetrics a;
  SuperstepMetrics ss;
  ss.worker_compute_ns = {100, 300};
  ss.worker_in_bytes = {0, 50};
  ss.compute_calls = 4;
  ss.messages = 2;
  ss.message_bytes = 20;
  ss.messaging_ns = 10;
  a.Accumulate(ss);
  EXPECT_EQ(a.supersteps, 1);
  EXPECT_EQ(a.compute_ns, 400);
  EXPECT_EQ(a.compute_calls, 4);

  RunMetrics b = a;
  b.Merge(a);
  EXPECT_EQ(b.supersteps, 2);
  EXPECT_EQ(b.compute_calls, 8);
  EXPECT_EQ(b.per_superstep.size(), 2u);
}

TEST(MetricsTest, SimulatedMakespanUsesSlowestWorker) {
  RunMetrics m;
  SuperstepMetrics ss;
  ss.worker_compute_ns = {100, 900};
  ss.worker_in_bytes = {0, 0};
  m.Accumulate(ss);
  // barrier cost 0, no bytes: exactly the slowest worker.
  EXPECT_EQ(m.SimulatedMakespanNs(125e6, 0), 900);
  // Network model adds bytes/bandwidth on the busiest worker.
  RunMetrics n;
  ss.worker_in_bytes = {125, 0};  // 125 bytes at 125 B/s = 1s.
  n.Accumulate(ss);
  EXPECT_EQ(n.SimulatedMakespanNs(125.0, 0), 900 + 1'000'000'000);
}

TEST(MetricsTest, ToStringMentionsCounters) {
  RunMetrics m;
  m.compute_calls = 1234;
  m.messages = 99;
  const std::string s = m.ToString();
  EXPECT_NE(s.find("1,234"), std::string::npos);
  EXPECT_NE(s.find("messages=99"), std::string::npos);
}

}  // namespace
}  // namespace graphite
