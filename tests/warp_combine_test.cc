// Tests for the inline-combining time-warp (§VI warp combiner): its
// tuples must equal TimeWarp's tuples post-folded, for random inputs.
#include <gtest/gtest.h>

#include "icm/warp.h"
#include "util/rng.h"

namespace graphite {
namespace {

using Entry = IntervalMap<int64_t>::Entry;
using Item = TemporalItem<int64_t>;

int64_t Min64(const int64_t& a, const int64_t& b) { return std::min(a, b); }

TEST(TimeWarpCombineTest, FoldsGroupsLikePostFold) {
  Rng rng(4242);
  for (int rep = 0; rep < 60; ++rep) {
    // Random partitioned outer set.
    std::vector<Entry> outer;
    TimePoint t = 0;
    const int num_states = 1 + static_cast<int>(rng.Uniform(6));
    for (int i = 0; i < num_states && t < 30; ++i) {
      const TimePoint end =
          i == num_states - 1 ? 30 : rng.UniformRange(t + 1, 31);
      outer.push_back({{t, end}, static_cast<int64_t>(rng.Uniform(3))});
      t = end;
    }
    std::vector<Item> inner;
    const int m = 1 + static_cast<int>(rng.Uniform(30));
    for (int i = 0; i < m; ++i) {
      const TimePoint s = rng.UniformRange(0, 29);
      inner.push_back(
          {{s, rng.UniformRange(s + 1, 31)},
           static_cast<int64_t>(rng.Uniform(100))});
    }

    const auto combined =
        TimeWarpCombine<int64_t, int64_t>(outer, inner, Min64);
    const auto plain = TimeWarp<int64_t, int64_t>(outer, inner);

    // Fold the plain tuples, then re-apply the (state, folded-value)
    // maximality merge the combining warp performs.
    struct Folded {
      Interval interval;
      int64_t state;
      int64_t value;
      uint32_t size;
    };
    std::vector<Folded> folded;
    for (const WarpTuple& w : plain) {
      int64_t acc = inner[w.inner_indices[0]].value;
      for (size_t i = 1; i < w.inner_indices.size(); ++i) {
        acc = Min64(acc, inner[w.inner_indices[i]].value);
      }
      Folded f{w.interval, outer[w.outer_index].value, acc,
               static_cast<uint32_t>(w.inner_indices.size())};
      if (!folded.empty() && folded.back().interval.Meets(f.interval) &&
          folded.back().state == f.state && folded.back().value == f.value) {
        folded.back().interval.end = f.interval.end;
        folded.back().size += f.size;
      } else {
        folded.push_back(f);
      }
    }

    ASSERT_EQ(combined.size(), folded.size()) << "rep=" << rep;
    for (size_t i = 0; i < combined.size(); ++i) {
      EXPECT_EQ(combined[i].interval, folded[i].interval) << "rep=" << rep;
      EXPECT_EQ(combined[i].combined, folded[i].value) << "rep=" << rep;
      EXPECT_EQ(outer[combined[i].outer_index].value, folded[i].state);
      // group_size bookkeeping may differ across the two merge orders
      // (plain warp dedups value-equal messages before folding); it only
      // needs to be a positive witness of a non-empty group.
      EXPECT_GT(combined[i].group_size, 0u);
    }
  }
}

TEST(TimeWarpCombineTest, EmptyInputs) {
  std::vector<Entry> outer = {{{0, 5}, 1}};
  std::vector<Item> inner;
  EXPECT_TRUE((TimeWarpCombine<int64_t, int64_t>(outer, inner, Min64).empty()));
}

TEST(TimeWarpCombineTest, SumCombinerOrderIndependent) {
  std::vector<Entry> outer = {{{0, 10}, 0}};
  std::vector<Item> inner = {{{0, 10}, 1}, {{3, 7}, 10}, {{5, 10}, 100}};
  auto sum = [](const int64_t& a, const int64_t& b) { return a + b; };
  const auto tuples = TimeWarpCombine<int64_t, int64_t>(outer, inner, sum);
  ASSERT_EQ(tuples.size(), 4u);
  EXPECT_EQ(tuples[0].interval, Interval(0, 3));
  EXPECT_EQ(tuples[0].combined, 1);
  EXPECT_EQ(tuples[1].interval, Interval(3, 5));
  EXPECT_EQ(tuples[1].combined, 11);
  EXPECT_EQ(tuples[2].interval, Interval(5, 7));
  EXPECT_EQ(tuples[2].combined, 111);
  EXPECT_EQ(tuples[3].interval, Interval(7, 10));
  EXPECT_EQ(tuples[3].combined, 101);
}

}  // namespace
}  // namespace graphite
