// Property-based tests of the time-warp operator against a naive
// per-time-point O(n^2) reference model, run over BOTH public forms of the
// operator: the legacy allocating API (TimeWarp -> vector<WarpTuple>) and
// the arena-backed flat SoA path (TimeWarpInto -> WarpOutput). The two
// must agree exactly with the reference — same slice boundaries, same
// state values, same message-value groups — on random interval sets.
//
// The SoA cases deliberately reuse one arena across all repetitions with
// barrier-style Release/Reset between them, so the suite doubles as the
// ASan/TSan workout for arena recycling (tests/CMakeLists.txt runs it
// under the sanitizer presets).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "icm/warp.h"
#include "temporal/time.h"
#include "util/arena.h"
#include "util/rng.h"
#include "util/simd.h"

namespace graphite {
namespace {

using Entry = IntervalMap<int>::Entry;
using Item = TemporalItem<int>;

// Canonical tuple form shared by the reference and both APIs: the group
// is the multiset of message *values* (maximality merges by value).
struct CanonTuple {
  Interval interval;
  int state_value;
  std::map<int, int> group;  // value -> multiplicity

  bool operator==(const CanonTuple& o) const {
    return interval == o.interval && state_value == o.state_value &&
           group == o.group;
  }
};

// Naive reference: evaluate (state, live-message multiset) at every time
// point — O(horizon * n) — then merge maximal runs of equal pairs. This
// is the paper's definition read literally: Properties 1-3 fix the
// per-time-point content, Property 4 makes the runs maximal.
std::vector<CanonTuple> NaiveWarp(const std::vector<Entry>& outer,
                                  const std::vector<Item>& inner,
                                  TimePoint horizon) {
  std::vector<CanonTuple> out;
  for (TimePoint t = 0; t < horizon; ++t) {
    const Entry* state = nullptr;
    for (const Entry& s : outer) {
      if (s.interval.Contains(t)) state = &s;
    }
    std::map<int, int> group;
    for (const Item& m : inner) {
      if (m.interval.Contains(t)) ++group[m.value];
    }
    if (state == nullptr || group.empty()) continue;
    if (!out.empty() && out.back().interval.end == t &&
        out.back().state_value == state->value &&
        out.back().group == group) {
      out.back().interval.end = t + 1;
    } else {
      out.push_back({Interval(t, t + 1), state->value, std::move(group)});
    }
  }
  return out;
}

std::vector<CanonTuple> CanonFromLegacy(const std::vector<Entry>& outer,
                                        const std::vector<Item>& inner,
                                        const std::vector<WarpTuple>& warp) {
  std::vector<CanonTuple> out;
  for (const WarpTuple& t : warp) {
    CanonTuple c{t.interval, outer[t.outer_index].value, {}};
    for (const uint32_t idx : t.inner_indices) ++c.group[inner[idx].value];
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<CanonTuple> CanonFromSoa(const std::vector<Entry>& outer,
                                     const std::vector<Item>& inner,
                                     const WarpOutput& warp) {
  std::vector<CanonTuple> out;
  for (size_t i = 0; i < warp.size(); ++i) {
    const FlatWarpTuple& t = warp[i];
    CanonTuple c{t.interval, outer[t.outer_index].value, {}};
    for (const uint32_t idx : warp.group(t)) ++c.group[inner[idx].value];
    out.push_back(std::move(c));
  }
  return out;
}

void ExpectSame(const std::vector<CanonTuple>& expected,
                const std::vector<CanonTuple>& got, const char* api,
                uint64_t seed) {
  ASSERT_EQ(expected.size(), got.size()) << api << " seed=" << seed;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i], got[i])
        << api << " seed=" << seed << " tuple " << i << " at "
        << got[i].interval.ToString();
  }
}

TEST(WarpSoaPropertyTest, BothApisMatchNaiveReference) {
  constexpr TimePoint kHorizon = 28;
  // One arena for the whole suite, recycled between cases exactly like an
  // engine superstep barrier.
  Arena arena;
  WarpScratch scratch;
  scratch.Attach(&arena);
  WarpOutput soa;
  soa.Attach(&arena);

  for (uint64_t seed = 1; seed <= 400; ++seed) {
    Rng rng(seed);
    std::vector<Entry> outer;
    TimePoint t = rng.UniformRange(0, 4);  // leading gap sometimes
    const int num_states = 1 + static_cast<int>(rng.Uniform(6));
    for (int i = 0; i < num_states && t < kHorizon; ++i) {
      const TimePoint end = (i == num_states - 1 || t + 1 >= kHorizon)
                                ? kHorizon
                                : rng.UniformRange(t + 1, kHorizon);
      // Few distinct values so equal-value maximality merges happen often.
      outer.push_back({{t, end}, static_cast<int>(rng.Uniform(3))});
      t = end;
    }
    std::vector<Item> inner;
    const int num_msgs = static_cast<int>(rng.Uniform(30));
    for (int i = 0; i < num_msgs; ++i) {
      const TimePoint s = rng.UniformRange(0, kHorizon - 1);
      inner.push_back({{s, rng.UniformRange(s + 1, kHorizon + 1)},
                       static_cast<int>(rng.Uniform(3))});
    }

    const std::vector<CanonTuple> expected =
        NaiveWarp(outer, inner, kHorizon);

    const auto legacy = TimeWarp<int, int>(outer, inner);
    ExpectSame(expected, CanonFromLegacy(outer, inner, legacy), "legacy",
               seed);

    TimeWarpInto<int, int>(outer, inner, &scratch, &soa);
    ExpectSame(expected, CanonFromSoa(outer, inner, soa), "soa", seed);

    // Legacy shim and SoA output must also agree index-for-index (the
    // shim is a copy of the SoA result by construction).
    ASSERT_EQ(legacy.size(), soa.size());
    for (size_t i = 0; i < soa.size(); ++i) {
      EXPECT_EQ(legacy[i].interval, soa[i].interval);
      EXPECT_EQ(legacy[i].outer_index, soa[i].outer_index);
      const auto group = soa.group(i);
      ASSERT_EQ(legacy[i].inner_indices.size(), group.size());
      for (size_t k = 0; k < group.size(); ++k) {
        EXPECT_EQ(legacy[i].inner_indices[k], group[k]);
      }
    }

    // Superstep-barrier recycling every few cases; the other cases reuse
    // the buffers hot (clear-on-entry inside TimeWarpInto).
    if (seed % 3 == 0) {
      scratch.Release();
      soa.Release();
      arena.Reset();
    }
  }
}

// The combining warp (§VI inline combiner) against a naive reference
// built directly from the definition: per outer entry, clip every message
// to the entry, cut slices at the clipped endpoints, fold the live group
// of each slice, then coalesce adjacent slices with equal state value and
// equal folded payload (group_size accumulates the live count of every
// coalesced slice — it meters compute work, it is not a deduplicated
// group cardinality, so it can exceed the plain warp's group size).
TEST(WarpSoaPropertyTest, CombineIntoMatchesNaiveSliceModel) {
  Arena arena;
  WarpScratch scratch;
  scratch.Attach(&arena);
  SuperstepVec<CombinedWarpTuple<int>> combined;
  combined.Attach(&arena);
  auto add = [](int a, int b) { return a + b; };

  for (uint64_t seed = 500; seed <= 650; ++seed) {
    Rng rng(seed);
    constexpr TimePoint kHorizon = 24;
    std::vector<Entry> outer;
    TimePoint t = 0;
    const int num_states = 1 + static_cast<int>(rng.Uniform(4));
    for (int i = 0; i < num_states && t < kHorizon; ++i) {
      const TimePoint end = (i == num_states - 1 || t + 1 >= kHorizon)
                                ? kHorizon
                                : rng.UniformRange(t + 1, kHorizon);
      outer.push_back({{t, end}, static_cast<int>(rng.Uniform(2))});
      t = end;
    }
    std::vector<Item> inner;
    const int num_msgs = static_cast<int>(rng.Uniform(20));
    for (int i = 0; i < num_msgs; ++i) {
      const TimePoint s = rng.UniformRange(0, kHorizon - 1);
      inner.push_back({{s, rng.UniformRange(s + 1, kHorizon + 1)},
                       static_cast<int>(rng.Uniform(5))});
    }

    TimeWarpCombineInto<int, int>(outer, inner, add, &scratch, &combined);

    struct NaiveTuple {
      Interval interval;
      int state_value;
      int combined;
      uint32_t group_size;
    };
    std::vector<NaiveTuple> expected;
    for (const Entry& e : outer) {
      std::vector<TimePoint> cuts;
      for (const Item& m : inner) {
        const TimePoint lo = std::max(m.interval.start, e.interval.start);
        const TimePoint hi = std::min(m.interval.end, e.interval.end);
        if (lo < hi) {
          cuts.push_back(lo);
          cuts.push_back(hi);
        }
      }
      std::sort(cuts.begin(), cuts.end());
      cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
      for (size_t c = 0; c + 1 < cuts.size(); ++c) {
        const Interval slice(cuts[c], cuts[c + 1]);
        int folded = 0;
        uint32_t live = 0;
        // Fold in ascending-index order, matching the sweep's live list.
        for (const Item& m : inner) {
          const TimePoint lo = std::max(m.interval.start, e.interval.start);
          const TimePoint hi = std::min(m.interval.end, e.interval.end);
          if (lo <= slice.start && slice.start < hi) {
            folded = live == 0 ? m.value : add(folded, m.value);
            ++live;
          }
        }
        if (live == 0) continue;
        if (!expected.empty() && expected.back().interval.Meets(slice) &&
            expected.back().state_value == e.value &&
            expected.back().combined == folded) {
          expected.back().interval.end = slice.end;
          expected.back().group_size += live;
        } else {
          expected.push_back({slice, e.value, folded, live});
        }
      }
    }

    ASSERT_EQ(expected.size(), combined.size()) << "seed=" << seed;
    for (size_t i = 0; i < combined.size(); ++i) {
      EXPECT_EQ(expected[i].interval, combined[i].interval) << "seed=" << seed;
      EXPECT_EQ(expected[i].state_value,
                outer[combined[i].outer_index].value)
          << "seed=" << seed;
      EXPECT_EQ(expected[i].combined, combined[i].combined)
          << "seed=" << seed;
      EXPECT_EQ(expected[i].group_size, combined[i].group_size)
          << "seed=" << seed;
    }

    if (seed % 4 == 0) {
      scratch.Release();
      combined.Release();
      arena.Reset();
    }
  }
}

// ---------------------------------------------------------------------------
// Scalar-vs-SIMD dispatch matrix (DESIGN.md §4j). The vectorized endpoint
// pass must be BYTE-identical to the scalar reference — same tuples, same
// spans, same pool contents, same combined folds — on every dispatch
// level this host can execute. Forcing levels through SimdSetDispatch in
// one process covers the same code paths the GRAPHITE_SIMD env override
// selects (both feed the same process-wide dispatch state); the native
// ctest entry additionally runs this suite with the env override set.
// ---------------------------------------------------------------------------

std::vector<SimdLevel> AvailableLevels() {
  std::vector<SimdLevel> levels{SimdLevel::kScalar};
  if (SimdMaxSupported() >= SimdLevel::kSse2) {
    levels.push_back(SimdLevel::kSse2);
  }
  if (SimdMaxSupported() >= SimdLevel::kAvx2) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

// Restores the process dispatch level on scope exit so these tests cannot
// leak a forced level into unrelated suites.
struct DispatchGuard {
  SimdLevel saved = SimdDispatchLevel();
  ~DispatchGuard() { SimdSetDispatch(saved); }
};

void MakeWorkload(uint64_t seed, TimePoint horizon, std::vector<Entry>* outer,
                  std::vector<Item>* inner) {
  Rng rng(seed);
  TimePoint t = rng.UniformRange(0, 4);
  const int num_states = 1 + static_cast<int>(rng.Uniform(6));
  for (int i = 0; i < num_states && t < horizon; ++i) {
    const TimePoint end = (i == num_states - 1 || t + 1 >= horizon)
                              ? horizon
                              : rng.UniformRange(t + 1, horizon);
    outer->push_back({{t, end}, static_cast<int>(rng.Uniform(3))});
    t = end;
  }
  // Every third seed goes big enough that outer x inner clears the
  // kernel's kSimdMinWork demotion threshold and genuinely runs the wide
  // path; the rest stay small and cover the demotion itself.
  const int num_msgs =
      static_cast<int>(rng.Uniform(seed % 3 == 0 ? 400 : 40));
  for (int i = 0; i < num_msgs; ++i) {
    // Mix time-ordered and shuffled arrivals so the partitioned sort
    // exercises both its presorted-interior hit and its std::sort
    // fallback, plus open-ended sentinel intervals for the wide clip.
    TimePoint s = rng.UniformRange(0, horizon - 1);
    TimePoint e = rng.UniformRange(s + 1, horizon + 2);
    if (rng.Uniform(12) == 0) s = kTimeMin;
    if (rng.Uniform(12) == 0) e = kTimeMax;
    inner->push_back({{s, e}, static_cast<int>(rng.Uniform(3))});
  }
  if (seed % 2 == 0) {
    std::sort(inner->begin(), inner->end(),
              [](const Item& a, const Item& b) {
                return a.interval.start < b.interval.start;
              });
  }
}

TEST(WarpSimdMatrixTest, TimeWarpIntoByteIdenticalAcrossDispatchLevels) {
  DispatchGuard guard;
  constexpr TimePoint kHorizon = 30;
  Arena arena;
  WarpScratch scratch;
  scratch.Attach(&arena);
  WarpOutput out;
  out.Attach(&arena);

  for (uint64_t seed = 1; seed <= 250; ++seed) {
    std::vector<Entry> outer;
    std::vector<Item> inner;
    MakeWorkload(seed, kHorizon, &outer, &inner);

    // Scalar reference snapshot.
    SimdSetDispatch(SimdLevel::kScalar);
    WarpStats ref_stats;
    TimeWarpInto<int, int>(outer, inner, &scratch, &out, &ref_stats);
    std::vector<FlatWarpTuple> ref_tuples(out.tuples().begin(),
                                          out.tuples().end());
    std::vector<std::vector<uint32_t>> ref_groups;
    for (size_t i = 0; i < out.size(); ++i) {
      ref_groups.emplace_back(out.group(i).begin(), out.group(i).end());
    }
    if (!outer.empty() && !inner.empty()) {
      EXPECT_EQ(1, ref_stats.simd_lanes);
    }

    for (const SimdLevel level : AvailableLevels()) {
      if (level == SimdLevel::kScalar) continue;
      SimdSetDispatch(level);
      WarpStats stats;
      TimeWarpInto<int, int>(outer, inner, &scratch, &out, &stats);
      ASSERT_EQ(ref_tuples.size(), out.size())
          << SimdLevelName(level) << " seed=" << seed;
      for (size_t i = 0; i < out.size(); ++i) {
        // Byte-identical: every field of every tuple, including the pool
        // span coordinates, not just canonicalized content. (Field-wise
        // rather than memcmp only to skip struct tail padding.)
        ASSERT_TRUE(ref_tuples[i].interval == out[i].interval &&
                    ref_tuples[i].outer_index == out[i].outer_index &&
                    ref_tuples[i].group.offset == out[i].group.offset &&
                    ref_tuples[i].group.count == out[i].group.count)
            << SimdLevelName(level) << " seed=" << seed << " tuple=" << i;
        const auto group = out.group(i);
        ASSERT_EQ(ref_groups[i].size(), group.size());
        ASSERT_TRUE(std::equal(group.begin(), group.end(),
                               ref_groups[i].begin()))
            << SimdLevelName(level) << " seed=" << seed << " tuple=" << i;
      }
      if (!outer.empty() && !inner.empty()) {
        // Small calls are demoted to the scalar path even under a wide
        // dispatch (warp_internal::kSimdMinWork); the report reflects
        // the path that actually ran.
        const size_t work = inner.size() * std::max<size_t>(outer.size(), 1);
        EXPECT_EQ(work >= warp_internal::kSimdMinWork ? SimdLanes(level) : 1,
                  stats.simd_lanes);
      }
    }

    if (seed % 5 == 0) {
      scratch.Release();
      out.Release();
      arena.Reset();
    }
  }
}

TEST(WarpSimdMatrixTest, CombineIntoByteIdenticalAcrossDispatchLevels) {
  DispatchGuard guard;
  constexpr TimePoint kHorizon = 26;
  Arena arena;
  WarpScratch scratch;
  scratch.Attach(&arena);
  SuperstepVec<CombinedWarpTuple<int>> out;
  out.Attach(&arena);
  auto add = [](int a, int b) { return a + b; };

  for (uint64_t seed = 700; seed <= 850; ++seed) {
    std::vector<Entry> outer;
    std::vector<Item> inner;
    MakeWorkload(seed, kHorizon, &outer, &inner);

    SimdSetDispatch(SimdLevel::kScalar);
    TimeWarpCombineInto<int, int>(outer, inner, add, &scratch, &out);
    std::vector<CombinedWarpTuple<int>> ref(out.span().begin(),
                                            out.span().end());

    for (const SimdLevel level : AvailableLevels()) {
      if (level == SimdLevel::kScalar) continue;
      SimdSetDispatch(level);
      TimeWarpCombineInto<int, int>(outer, inner, add, &scratch, &out);
      ASSERT_EQ(ref.size(), out.size())
          << SimdLevelName(level) << " seed=" << seed;
      for (size_t i = 0; i < out.size(); ++i) {
        ASSERT_TRUE(ref[i].interval == out[i].interval &&
                    ref[i].outer_index == out[i].outer_index &&
                    ref[i].combined == out[i].combined &&
                    ref[i].group_size == out[i].group_size)
            << SimdLevelName(level) << " seed=" << seed << " tuple=" << i;
      }
    }

    if (seed % 4 == 0) {
      scratch.Release();
      out.Release();
      arena.Reset();
    }
  }
}

// The partitioned endpoint sort's observability contract: counters move,
// and on time-ordered inboxes the interior is detected presorted.
TEST(WarpSimdMatrixTest, SortCountersReportPartitionAndPresortedness) {
  if (SimdMaxSupported() < SimdLevel::kSse2) GTEST_SKIP();
  DispatchGuard guard;
  SimdSetDispatch(SimdMaxSupported());
  Arena arena;
  WarpScratch scratch;
  scratch.Attach(&arena);
  WarpOutput out;
  out.Attach(&arena);

  // Workloads sized to clear the kSimdMinWork demotion threshold (small
  // calls run the scalar path, which never touches the sort counters).
  const int n = static_cast<int>(warp_internal::kSimdMinWork);

  // Time-ordered messages spanning past both entry bounds: every clipped
  // endpoint pins to a bound, the interior is empty (trivially sorted).
  std::vector<Entry> outer{{{10, 2000}, 1}};
  std::vector<Item> pinned;
  for (int i = 0; i < n; ++i) pinned.push_back({{0, 3000}, i % 3});
  WarpStats stats;
  TimeWarpInto<int, int>(outer, pinned, &scratch, &out, &stats);
  EXPECT_EQ(1, stats.sort_calls);
  EXPECT_EQ(1, stats.sort_presorted);
  EXPECT_EQ(2 * n, stats.sort_pinned);
  EXPECT_EQ(2 * n, stats.sort_endpoints);

  // Reverse-time interior endpoints force the std::sort fallback.
  std::vector<Item> shuffled;
  for (int i = 0; i < n; ++i) {
    shuffled.push_back({{1998 - 2 * i, 1999 - i}, i % 3});
  }
  WarpStats stats2;
  TimeWarpInto<int, int>(outer, shuffled, &scratch, &out, &stats2);
  EXPECT_EQ(1, stats2.sort_calls);
  EXPECT_EQ(0, stats2.sort_presorted);
  EXPECT_GT(stats2.sort_endpoints, stats2.sort_pinned);
}

}  // namespace
}  // namespace graphite
