// Tests for the time-join and time-warp operators (§IV-B), including
// randomized property tests of the four formal warp guarantees — valid
// inclusion, no invalid inclusion, no duplication, maximality — against a
// brute-force per-time-point evaluator.
#include "icm/warp.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace graphite {
namespace {

using Entry = IntervalMap<int>::Entry;
using Item = TemporalItem<int>;

std::vector<Entry> MakeOuter(std::initializer_list<Entry> entries) {
  return entries;
}

TEST(TimeJoinTest, PairwiseIntersections) {
  std::vector<Entry> outer = MakeOuter({{{0, 5}, 10}, {{5, 9}, 20}});
  std::vector<Item> inner = {{{2, 7}, 100}, {{8, 12}, 200}};
  auto join = TimeJoin<int, int>(outer, inner);
  ASSERT_EQ(join.size(), 3u);
  EXPECT_EQ(join[0].interval, Interval(2, 5));  // s1 x m1
  EXPECT_EQ(join[1].interval, Interval(5, 7));  // s2 x m1
  EXPECT_EQ(join[2].interval, Interval(8, 9));  // s2 x m2
}

// The paper's Fig. 3 worked example: 3 partitioned states, 5 messages.
//   s1=[0,5), s2=[5,9), s3=[9,12)
//   m1=[0,4), m2=[2,7), m3=[5,10), m4=[7,9), m5=[9,10)
// Expected boundaries 0,2,4,5,7,9,10 and groups per slice.
TEST(TimeWarpTest, PaperFigure3Example) {
  std::vector<Entry> outer =
      MakeOuter({{{0, 5}, 1}, {{5, 9}, 2}, {{9, 12}, 3}});
  std::vector<Item> inner = {
      {{0, 4}, 100}, {{2, 7}, 200}, {{5, 10}, 300}, {{7, 9}, 400},
      {{9, 10}, 500}};
  auto warp = TimeWarp<int, int>(outer, inner);
  ASSERT_EQ(warp.size(), 6u);

  EXPECT_EQ(warp[0].interval, Interval(0, 2));
  EXPECT_EQ(warp[0].inner_indices, (std::vector<uint32_t>{0}));  // {m1}
  EXPECT_EQ(warp[1].interval, Interval(2, 4));
  EXPECT_EQ(warp[1].inner_indices, (std::vector<uint32_t>{0, 1}));  // {m1,m2}
  EXPECT_EQ(warp[2].interval, Interval(4, 5));
  EXPECT_EQ(warp[2].inner_indices, (std::vector<uint32_t>{1}));  // {m2}
  EXPECT_EQ(warp[3].interval, Interval(5, 7));
  EXPECT_EQ(warp[3].inner_indices, (std::vector<uint32_t>{1, 2}));  // {m2,m3}
  EXPECT_EQ(warp[4].interval, Interval(7, 9));
  EXPECT_EQ(warp[4].inner_indices, (std::vector<uint32_t>{2, 3}));  // {m3,m4}
  EXPECT_EQ(warp[5].interval, Interval(9, 10));
  EXPECT_EQ(warp[5].inner_indices, (std::vector<uint32_t>{2, 4}));  // {m3,m5}
  EXPECT_EQ(warp[5].outer_index, 2u);
}

TEST(TimeWarpTest, EmptyInputs) {
  std::vector<Entry> outer = MakeOuter({{{0, 5}, 1}});
  std::vector<Item> inner;
  EXPECT_TRUE((TimeWarp<int, int>(outer, inner).empty()));
  outer.clear();
  inner.push_back({{0, 5}, 1});
  EXPECT_TRUE((TimeWarp<int, int>(outer, inner).empty()));
}

TEST(TimeWarpTest, DisjointMessageProducesNothing) {
  std::vector<Entry> outer = MakeOuter({{{0, 5}, 1}});
  std::vector<Item> inner = {{{7, 9}, 100}};
  EXPECT_TRUE((TimeWarp<int, int>(outer, inner).empty()));
}

TEST(TimeWarpTest, MessageSpanningTwoStatesSplits) {
  std::vector<Entry> outer = MakeOuter({{{0, 5}, 1}, {{5, 9}, 2}});
  std::vector<Item> inner = {{{2, 7}, 100}};
  auto warp = TimeWarp<int, int>(outer, inner);
  ASSERT_EQ(warp.size(), 2u);
  EXPECT_EQ(warp[0].interval, Interval(2, 5));
  EXPECT_EQ(warp[0].outer_index, 0u);
  EXPECT_EQ(warp[1].interval, Interval(5, 7));
  EXPECT_EQ(warp[1].outer_index, 1u);
}

TEST(TimeWarpTest, MaximalityMergesAcrossEqualStates) {
  // Two adjacent state entries with the SAME value and one message across
  // both: the warp must emit a single merged tuple (formal property 4).
  std::vector<Entry> outer = MakeOuter({{{0, 5}, 7}, {{5, 9}, 7}});
  std::vector<Item> inner = {{{2, 7}, 100}};
  auto warp = TimeWarp<int, int>(outer, inner);
  ASSERT_EQ(warp.size(), 1u);
  EXPECT_EQ(warp[0].interval, Interval(2, 7));
}

TEST(TimeWarpTest, NoMergeAcrossDifferentStates) {
  std::vector<Entry> outer = MakeOuter({{{0, 5}, 7}, {{5, 9}, 8}});
  std::vector<Item> inner = {{{2, 7}, 100}};
  EXPECT_EQ((TimeWarp<int, int>(outer, inner).size()), 2u);
}

TEST(TimeWarpTest, EqualValuedMessagesMergeAdjacentSlices) {
  // Two messages with equal payloads whose intervals meet: slices [0,3)
  // and [3,6) carry value-equal groups and must coalesce.
  std::vector<Entry> outer = MakeOuter({{{0, 10}, 1}});
  std::vector<Item> inner = {{{0, 3}, 100}, {{3, 6}, 100}};
  auto warp = TimeWarp<int, int>(outer, inner);
  ASSERT_EQ(warp.size(), 1u);
  EXPECT_EQ(warp[0].interval, Interval(0, 6));
}

TEST(TimeWarpTest, DistinctPayloadsDoNotMerge) {
  std::vector<Entry> outer = MakeOuter({{{0, 10}, 1}});
  std::vector<Item> inner = {{{0, 3}, 100}, {{3, 6}, 101}};
  EXPECT_EQ((TimeWarp<int, int>(outer, inner).size()), 2u);
}

TEST(TimeWarpTest, OpenEndedIntervals) {
  std::vector<Entry> outer = MakeOuter({{{0, kTimeMax}, 1}});
  std::vector<Item> inner = {{{9, kTimeMax}, 100}, {{6, kTimeMax}, 200}};
  auto warp = TimeWarp<int, int>(outer, inner);
  ASSERT_EQ(warp.size(), 2u);
  EXPECT_EQ(warp[0].interval, Interval(6, 9));
  EXPECT_EQ(warp[0].inner_indices, (std::vector<uint32_t>{1}));
  EXPECT_EQ(warp[1].interval, Interval(9, kTimeMax));
  EXPECT_EQ(warp[1].inner_indices, (std::vector<uint32_t>{0, 1}));
}

// ---------------------------------------------------------------------
// Randomized property tests against a per-time-point brute force model.
// ---------------------------------------------------------------------

struct WarpPropertyCase {
  uint64_t seed;
  int num_states;
  int num_messages;
};

class WarpPropertyTest : public ::testing::TestWithParam<WarpPropertyCase> {};

TEST_P(WarpPropertyTest, FourFormalGuaranteesHold) {
  const WarpPropertyCase param = GetParam();
  Rng rng(param.seed);
  constexpr TimePoint kHorizon = 30;

  // Random temporally-partitioned outer set covering [0, kHorizon).
  std::vector<Entry> outer;
  TimePoint t = 0;
  for (int i = 0; i < param.num_states && t < kHorizon; ++i) {
    TimePoint end = (i == param.num_states - 1)
                        ? kHorizon
                        : rng.UniformRange(t + 1, kHorizon + 1);
    outer.push_back({{t, end}, static_cast<int>(rng.Uniform(3))});
    t = end;
  }
  // Random inner set; payload range kept small to exercise value-equality
  // merging in the maximality check.
  std::vector<Item> inner;
  for (int i = 0; i < param.num_messages; ++i) {
    const TimePoint s = rng.UniformRange(0, kHorizon - 1);
    const TimePoint e = rng.UniformRange(s + 1, kHorizon + 1);
    inner.push_back({{s, e}, static_cast<int>(rng.Uniform(4))});
  }

  const auto warp = TimeWarp<int, int>(outer, inner);

  // Shared helper: which output tuple covers time-point t (if any).
  auto tuple_at = [&](TimePoint tp) -> const WarpTuple* {
    const WarpTuple* found = nullptr;
    for (const auto& w : warp) {
      if (w.interval.Contains(tp)) {
        EXPECT_EQ(found, nullptr)
            << "duplication at t=" << tp;  // Property 3 (outer is disjoint)
        found = &w;
      }
    }
    return found;
  };

  for (TimePoint tp = 0; tp < kHorizon; ++tp) {
    // Brute force: the state and message-group alive at tp.
    const Entry* state = nullptr;
    for (const auto& s : outer) {
      if (s.interval.Contains(tp)) state = &s;
    }
    std::multiset<int> expected_msgs;
    for (const auto& m : inner) {
      if (m.interval.Contains(tp)) expected_msgs.insert(m.value);
    }
    const WarpTuple* w = tuple_at(tp);
    if (expected_msgs.empty() || state == nullptr) {
      // Property 2: nothing may be emitted where either side is absent.
      EXPECT_EQ(w, nullptr) << "invalid inclusion at t=" << tp;
      continue;
    }
    // Property 1: the pair must be present with the full group.
    ASSERT_NE(w, nullptr) << "missing inclusion at t=" << tp;
    EXPECT_EQ(outer[w->outer_index].value, state->value);
    std::multiset<int> got;
    for (uint32_t idx : w->inner_indices) got.insert(inner[idx].value);
    EXPECT_EQ(got, expected_msgs) << "group mismatch at t=" << tp;
  }

  // Property 4 (maximality): no adjacent/overlapping tuples with equal
  // state value and equal message-value group.
  for (size_t i = 0; i + 1 < warp.size(); ++i) {
    const auto& a = warp[i];
    const auto& b = warp[i + 1];
    if (!(a.interval.Meets(b.interval) || a.interval.Intersects(b.interval))) {
      continue;
    }
    if (outer[a.outer_index].value != outer[b.outer_index].value) continue;
    std::multiset<int> ga, gb;
    for (uint32_t idx : a.inner_indices) ga.insert(inner[idx].value);
    for (uint32_t idx : b.inner_indices) gb.insert(inner[idx].value);
    EXPECT_NE(ga, gb) << "non-maximal tuples at " << a.interval.ToString()
                      << " and " << b.interval.ToString();
  }

  // Output must be temporally ordered and disjoint.
  for (size_t i = 0; i + 1 < warp.size(); ++i) {
    EXPECT_LE(warp[i].interval.end, warp[i + 1].interval.start);
  }
}

std::vector<WarpPropertyCase> MakeWarpCases() {
  std::vector<WarpPropertyCase> cases;
  uint64_t seed = 1000;
  for (int states : {1, 2, 5, 9}) {
    for (int msgs : {1, 2, 6, 15, 40}) {
      for (int rep = 0; rep < 3; ++rep) {
        cases.push_back({seed++, states, msgs});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Random, WarpPropertyTest,
                         ::testing::ValuesIn(MakeWarpCases()));

// Warp must agree with the time-join it is defined over: every time-join
// triple's time-points appear in warp with the same (state, message) pair.
TEST(TimeWarpTest, ConsistentWithTimeJoin) {
  Rng rng(777);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<Entry> outer;
    TimePoint t = rng.UniformRange(0, 3);
    for (int i = 0; i < 4 && t < 20; ++i) {
      TimePoint end = rng.UniformRange(t + 1, 21);
      outer.push_back({{t, end}, static_cast<int>(rng.Uniform(10))});
      t = end;
    }
    std::vector<Item> inner;
    for (int i = 0; i < 8; ++i) {
      const TimePoint s = rng.UniformRange(0, 19);
      inner.push_back({{s, rng.UniformRange(s + 1, 21)},
                       static_cast<int>(rng.Uniform(10))});
    }
    const auto join = TimeJoin<int, int>(outer, inner);
    const auto warp = TimeWarp<int, int>(outer, inner);
    for (const auto& jt : join) {
      for (TimePoint tp = jt.interval.start; tp < jt.interval.end; ++tp) {
        // Valid inclusion is value-based: after the maximality merge a
        // group may carry an equal-valued message's index instead.
        bool found = false;
        for (const auto& w : warp) {
          if (!w.interval.Contains(tp)) continue;
          for (uint32_t idx : w.inner_indices) {
            if (inner[idx].value == inner[jt.inner_index].value) found = true;
          }
        }
        EXPECT_TRUE(found) << "join triple missing from warp at t=" << tp;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Arrival-order guarantee: every WarpTuple::inner_indices lists message
// indices in arrival (inbox) order — i.e. strictly ascending — including
// tuples produced by the Property-4 maximality merge across slice
// boundaries, which must keep the earlier slice's group.
// ---------------------------------------------------------------------

// Targeted cross-slice merge: [0,3) is live {m0, m1} and [3,6) is live
// {m0, m2}; with m1 and m2 equal-valued the groups are multiset-equal, so
// maximality merges the slices. The merged tuple must keep the FIRST
// slice's group {0, 1} in arrival order — not {0, 2}, and not a
// re-sorted or match-ordered permutation.
TEST(TimeWarpTest, MaximalityMergeKeepsArrivalOrderAcrossSlices) {
  std::vector<Entry> outer = MakeOuter({{{0, 10}, 1}});
  std::vector<Item> inner = {{{0, 6}, 5}, {{0, 3}, 7}, {{3, 6}, 7}};
  const auto warp = TimeWarp<int, int>(outer, inner);
  ASSERT_EQ(warp.size(), 1u);
  EXPECT_EQ(warp[0].interval, Interval(0, 6));
  EXPECT_EQ(warp[0].inner_indices, (std::vector<uint32_t>{0, 1}));
}

// Same shape, but the merge chain extends over three slices; arrival
// order must survive repeated in-place extension of one tuple.
TEST(TimeWarpTest, RepeatedMergeKeepsArrivalOrder) {
  std::vector<Entry> outer = MakeOuter({{{0, 12}, 1}});
  std::vector<Item> inner = {
      {{0, 9}, 5}, {{0, 3}, 7}, {{3, 6}, 7}, {{6, 9}, 7}};
  const auto warp = TimeWarp<int, int>(outer, inner);
  ASSERT_EQ(warp.size(), 1u);
  EXPECT_EQ(warp[0].interval, Interval(0, 9));
  EXPECT_EQ(warp[0].inner_indices, (std::vector<uint32_t>{0, 1}));
}

// A message arriving later (higher index) but starting earlier must still
// be listed after earlier arrivals in every group it shares with them.
TEST(TimeWarpTest, GroupOrderIsArrivalNotStartTime) {
  std::vector<Entry> outer = MakeOuter({{{0, 10}, 1}});
  // m0 arrives first but starts later than m1.
  std::vector<Item> inner = {{{4, 8}, 100}, {{1, 8}, 200}};
  const auto warp = TimeWarp<int, int>(outer, inner);
  ASSERT_EQ(warp.size(), 2u);
  EXPECT_EQ(warp[0].interval, Interval(1, 4));
  EXPECT_EQ(warp[0].inner_indices, (std::vector<uint32_t>{1}));
  EXPECT_EQ(warp[1].interval, Interval(4, 8));
  EXPECT_EQ(warp[1].inner_indices, (std::vector<uint32_t>{0, 1}));
}

// Randomized sweep: ascending inner_indices in every tuple, any input.
TEST(TimeWarpTest, AllGroupsAscendingUnderRandomInputs) {
  Rng rng(4242);
  for (int rep = 0; rep < 200; ++rep) {
    std::vector<Entry> outer;
    TimePoint t = 0;
    const int num_states = 1 + static_cast<int>(rng.Uniform(5));
    for (int i = 0; i < num_states && t < 24; ++i) {
      TimePoint end =
          i == num_states - 1 ? 24 : rng.UniformRange(t + 1, 25);
      outer.push_back({{t, end}, static_cast<int>(rng.Uniform(3))});
      t = end;
    }
    std::vector<Item> inner;
    const int num_msgs = 1 + static_cast<int>(rng.Uniform(24));
    for (int i = 0; i < num_msgs; ++i) {
      const TimePoint s = rng.UniformRange(0, 23);
      // Few distinct payloads so equal-value merges are frequent.
      inner.push_back(
          {{s, rng.UniformRange(s + 1, 25)}, static_cast<int>(rng.Uniform(3))});
    }
    for (const WarpTuple& w : TimeWarp<int, int>(outer, inner)) {
      for (size_t i = 0; i + 1 < w.inner_indices.size(); ++i) {
        ASSERT_LT(w.inner_indices[i], w.inner_indices[i + 1])
            << "group not in arrival order in " << w.interval.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace graphite
