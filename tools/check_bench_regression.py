#!/usr/bin/env python3
"""Perf regression gate over bench JSON reports.

Compares the "gated" block of a fresh benchmark run against the committed
baseline and fails on >10% regressions. Each gated entry is
self-describing:

    "gated": {
      "warp_alloc_ratio": {"value": 310.0, "better": "higher", "timing": false},
      ...
    }

The gated block is a schema, not a suggestion: every entry must carry a
numeric "value", a "better" direction of "higher" or "lower", and a
boolean "timing" flag. A malformed or renamed entry in either report is a
format error (exit 2), not a silent skip — a baseline whose keys drifted
from the bench binary would otherwise gate nothing.

Non-timing metrics (allocation counts, ratios of counts) are deterministic
per build and enforced unconditionally. Timing metrics are noisy on shared
machines, so they are warnings by default and enforced only with --strict
or GRAPHITE_PERF_STRICT=1. When the two reports record different
`hardware_concurrency` values, timing gates are additionally downgraded to
warnings even under --strict — a baseline taken on a different core count
says nothing about timing on this host — while allocation/count gates stay
enforced (they are core-count independent). The same downgrade applies
when the reports record different `simd_dispatch` levels: scalar-vs-AVX2
timings are not comparable, but allocation counts are dispatch-invariant.

Keys present only in the fresh run (a newly added gate whose baseline has
not been regenerated yet) are reported as notes, never failures.

Usage: check_bench_regression.py <committed.json> <fresh.json> [--strict]
       check_bench_regression.py --list-gates <report.json> [...]
       check_bench_regression.py --self-test
Exit status: 0 = within tolerance, 1 = regression, 2 = usage/format error.
"""

import json
import os
import sys

TOLERANCE = 0.10  # Allowed relative regression.


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    gated = report.get("gated")
    if not isinstance(gated, dict):
        print(f"error: {path} has no 'gated' object", file=sys.stderr)
        sys.exit(2)
    for key, entry in gated.items():
        problem = validate_entry(entry)
        if problem:
            print(
                f"error: {path}: gated entry {key!r} {problem}",
                file=sys.stderr,
            )
            sys.exit(2)
    return report


def validate_entry(entry):
    """Returns a problem description for a malformed gated entry, else None."""
    if not isinstance(entry, dict):
        return f"is {type(entry).__name__}, expected an object"
    value = entry.get("value")
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return f"has non-numeric 'value' {value!r}"
    better = entry.get("better")
    if better not in ("higher", "lower"):
        return f"has invalid 'better' {better!r} (want 'higher'|'lower')"
    if not isinstance(entry.get("timing"), bool):
        return f"has non-boolean 'timing' {entry.get('timing')!r}"
    return None


def list_gates(paths):
    """--list-gates mode: print every gate key a report defines and exit."""
    if not paths:
        print(__doc__, file=sys.stderr)
        return 2
    for path in paths:
        report = load_report(path)
        print(f"{path}:")
        for key, entry in sorted(report["gated"].items()):
            kind = "timing" if entry["timing"] else "count "
            print(
                f"  {kind}  better={entry['better']:<6}  "
                f"{key} = {float(entry['value']):.3f}"
            )
    return 0


def regressed(better, baseline, fresh):
    """True when `fresh` is more than TOLERANCE worse than `baseline`."""
    if better == "higher":
        return fresh < baseline * (1.0 - TOLERANCE)
    # better == "lower" (validated at load time).
    # A zero baseline (e.g. zero allocations in steady state) allows
    # only the absolute slack the tolerance would give a baseline of 1.
    return fresh > baseline * (1.0 + TOLERANCE) + (
        TOLERANCE if baseline == 0 else 0.0
    )


def self_test():
    """Runs the gate as a subprocess over synthetic reports (exit 0/1).

    Registered as the `bench_gate_self_test` ctest entry so the gate's
    contract — schema rejection, timing downgrade on host mismatch,
    unconditional count enforcement — is itself under test without
    needing a benchmark run or a pytest install.
    """
    import subprocess
    import tempfile

    def report(gated, cores=8, simd="avx2"):
        return {
            "hardware_concurrency": cores,
            "simd_dispatch": simd,
            "gated": gated,
        }

    def entry(value, better="lower", timing=False):
        return {"value": value, "better": better, "timing": timing}

    env = dict(os.environ)
    env.pop("GRAPHITE_PERF_STRICT", None)
    failures = []

    with tempfile.TemporaryDirectory(prefix="bench_gate_st_") as tmp:
        def run(case, base, fresh, extra=None, want=0, grep=None):
            paths = []
            for name, doc in (("base.json", base), ("fresh.json", fresh)):
                path = os.path.join(tmp, case + "_" + name)
                with open(path, "w", encoding="utf-8") as f:
                    json.dump(doc, f)
                paths.append(path)
            cmd = [sys.executable, os.path.abspath(__file__)]
            cmd += (extra or []) + paths
            proc = subprocess.run(
                cmd, env=env, capture_output=True, text=True
            )
            out = proc.stdout + proc.stderr
            if proc.returncode != want:
                failures.append(
                    f"{case}: exit {proc.returncode}, want {want}\n{out}"
                )
            elif grep and grep not in out:
                failures.append(f"{case}: output missing {grep!r}\n{out}")
            else:
                print(f"  ok  {case}")

        clean = report({"allocs": entry(100.0)})
        run("identical_reports_pass", clean, clean, want=0)
        run(
            "count_regression_fails",
            report({"allocs": entry(100.0)}),
            report({"allocs": entry(150.0)}),
            want=1,
            grep="REGRESSION",
        )
        run(
            "count_within_tolerance_passes",
            report({"allocs": entry(100.0)}),
            report({"allocs": entry(105.0)}),
            want=0,
        )
        run(
            "higher_is_better_regression",
            report({"speedup": entry(10.0, better="higher")}),
            report({"speedup": entry(5.0, better="higher")}),
            want=1,
        )
        run(
            "zero_baseline_gets_absolute_slack",
            report({"allocs": entry(0.0)}),
            report({"allocs": entry(0.05)}),
            want=0,
        )
        run(
            "zero_baseline_still_gates",
            report({"allocs": entry(0.0)}),
            report({"allocs": entry(0.5)}),
            want=1,
        )
        run(
            "timing_regression_is_warning_by_default",
            report({"warp_ms": entry(10.0, timing=True)}),
            report({"warp_ms": entry(20.0, timing=True)}),
            want=0,
            grep="warn",
        )
        run(
            "timing_regression_enforced_under_strict",
            report({"warp_ms": entry(10.0, timing=True)}),
            report({"warp_ms": entry(20.0, timing=True)}),
            extra=["--strict"],
            want=1,
        )
        run(
            "core_mismatch_downgrades_timing_even_strict",
            report({"warp_ms": entry(10.0, timing=True)}, cores=8),
            report({"warp_ms": entry(20.0, timing=True)}, cores=32),
            extra=["--strict"],
            want=0,
            grep="hardware_concurrency",
        )
        run(
            "simd_mismatch_downgrades_timing_even_strict",
            report({"warp_ms": entry(10.0, timing=True)}, simd="avx2"),
            report({"warp_ms": entry(20.0, timing=True)}, simd="scalar"),
            extra=["--strict"],
            want=0,
            grep="simd_dispatch",
        )
        run(
            "core_mismatch_still_enforces_counts",
            report({"allocs": entry(100.0)}, cores=8),
            report({"allocs": entry(150.0)}, cores=32),
            want=1,
            grep="REGRESSION",
        )
        run(
            "missing_key_in_fresh_fails",
            report({"allocs": entry(100.0), "spans": entry(5.0)}),
            report({"allocs": entry(100.0)}),
            want=1,
            grep="missing from fresh run",
        )
        run(
            "new_key_in_fresh_is_note",
            report({"allocs": entry(100.0)}),
            report({"allocs": entry(100.0), "spans": entry(5.0)}),
            want=0,
            grep="no baseline yet",
        )
        run(
            "missing_gated_block_is_format_error",
            {"hardware_concurrency": 8},
            clean,
            want=2,
            grep="no 'gated' object",
        )
        run(
            "non_numeric_value_is_format_error",
            report({"allocs": {"value": "fast", "better": "lower",
                               "timing": False}}),
            clean,
            want=2,
            grep="non-numeric",
        )
        run(
            "bad_direction_is_format_error",
            report({"allocs": {"value": 1.0, "better": "sideways",
                               "timing": False}}),
            clean,
            want=2,
            grep="invalid 'better'",
        )
        run(
            "missing_timing_flag_is_format_error",
            report({"allocs": {"value": 1.0, "better": "lower"}}),
            clean,
            want=2,
            grep="non-boolean",
        )
        run(
            "list_gates_prints_schema",
            clean,
            clean,
            extra=["--list-gates"],
            want=0,
            grep="allocs",
        )

    if failures:
        print(f"\nself-test FAILED ({len(failures)} cases):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("self-test: 18 cases ok")
    return 0


def main(argv):
    if "--self-test" in argv:
        return self_test()
    strict = "--strict" in argv or os.environ.get(
        "GRAPHITE_PERF_STRICT", "0"
    ) not in ("", "0")
    paths = [a for a in argv if not a.startswith("--")]
    if "--list-gates" in argv:
        return list_gates(paths)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    committed_report = load_report(paths[0])
    fresh_report = load_report(paths[1])
    committed = committed_report["gated"]
    fresh = fresh_report["gated"]

    base_cores = committed_report.get("hardware_concurrency")
    fresh_cores = fresh_report.get("hardware_concurrency")
    cores_match = base_cores is not None and base_cores == fresh_cores
    if not cores_match:
        print(
            f"note: hardware_concurrency baseline={base_cores} vs "
            f"fresh={fresh_cores}; timing gates are warnings only "
            "(alloc/count gates still enforced)"
        )
    base_simd = committed_report.get("simd_dispatch")
    fresh_simd = fresh_report.get("simd_dispatch")
    simd_match = base_simd == fresh_simd
    if not simd_match:
        print(
            f"note: simd_dispatch baseline={base_simd} vs "
            f"fresh={fresh_simd}; timing gates are warnings only "
            "(alloc/count gates are dispatch-invariant, still enforced)"
        )

    failures = []
    for key, base in committed.items():
        if key not in fresh:
            failures.append(f"{key}: missing from fresh run")
            continue
        entry = fresh[key]
        base_v = float(base["value"])
        fresh_v = float(entry["value"])
        timing = base["timing"]
        direction = base["better"]
        bad = regressed(direction, base_v, fresh_v)
        # Timing gates require --strict plus a comparable host (same core
        # count and SIMD dispatch); non-timing gates (allocs, counts, call
        # ratios) always enforce.
        enforce = not timing or (strict and cores_match and simd_match)
        verdict = "OK"
        if bad:
            verdict = "REGRESSION" if enforce else "warn"
        enforced = "" if enforce else " (timing, not enforced)"
        print(
            f"{verdict:>10}  {key}: baseline {base_v:.3f} -> fresh "
            f"{fresh_v:.3f} (better: {direction}){enforced}"
        )
        if bad and enforce:
            failures.append(
                f"{key}: {fresh_v:.3f} vs baseline {base_v:.3f} "
                f"(better: {direction}, tolerance {TOLERANCE:.0%})"
            )
    for key in fresh:
        if key not in committed:
            print(
                f"      note  {key}: new in fresh run (no baseline yet); "
                "regenerate the committed report to gate it"
            )

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
