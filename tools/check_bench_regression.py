#!/usr/bin/env python3
"""Perf regression gate over bench JSON reports.

Compares the "gated" block of a fresh benchmark run against the committed
baseline and fails on >10% regressions. Each gated entry is
self-describing:

    "gated": {
      "warp_alloc_ratio": {"value": 310.0, "better": "higher", "timing": false},
      ...
    }

Non-timing metrics (allocation counts, ratios of counts) are deterministic
per build and enforced unconditionally. Timing metrics are noisy on shared
machines, so they are warnings by default and enforced only with --strict
or GRAPHITE_PERF_STRICT=1. When the two reports record different
`hardware_concurrency` values, timing gates are additionally downgraded to
warnings even under --strict — a baseline taken on a different core count
says nothing about timing on this host — while allocation/count gates stay
enforced (they are core-count independent).

Usage: check_bench_regression.py <committed.json> <fresh.json> [--strict]
Exit status: 0 = within tolerance, 1 = regression, 2 = usage/format error.
"""

import json
import os
import sys

TOLERANCE = 0.10  # Allowed relative regression.


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    gated = report.get("gated")
    if not isinstance(gated, dict):
        print(f"error: {path} has no 'gated' object", file=sys.stderr)
        sys.exit(2)
    return report


def regressed(better, baseline, fresh):
    """True when `fresh` is more than TOLERANCE worse than `baseline`."""
    if better == "higher":
        return fresh < baseline * (1.0 - TOLERANCE)
    if better == "lower":
        # A zero baseline (e.g. zero allocations in steady state) allows
        # only the absolute slack the tolerance would give a baseline of 1.
        return fresh > baseline * (1.0 + TOLERANCE) + (
            TOLERANCE if baseline == 0 else 0.0
        )
    print(f"error: unknown 'better' direction {better!r}", file=sys.stderr)
    sys.exit(2)


def main(argv):
    strict = "--strict" in argv or os.environ.get(
        "GRAPHITE_PERF_STRICT", "0"
    ) not in ("", "0")
    paths = [a for a in argv if a != "--strict"]
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    committed_report = load_report(paths[0])
    fresh_report = load_report(paths[1])
    committed = committed_report["gated"]
    fresh = fresh_report["gated"]

    base_cores = committed_report.get("hardware_concurrency")
    fresh_cores = fresh_report.get("hardware_concurrency")
    cores_match = base_cores is not None and base_cores == fresh_cores
    if not cores_match:
        print(
            f"note: hardware_concurrency baseline={base_cores} vs "
            f"fresh={fresh_cores}; timing gates are warnings only "
            "(alloc/count gates still enforced)"
        )

    failures = []
    for key, base in committed.items():
        if key not in fresh:
            failures.append(f"{key}: missing from fresh run")
            continue
        entry = fresh[key]
        base_v = float(base["value"])
        fresh_v = float(entry["value"])
        timing = bool(base.get("timing", False))
        direction = base.get("better", "lower")
        bad = regressed(direction, base_v, fresh_v)
        # Timing gates require both --strict and a matching core count;
        # non-timing gates (allocs, counts, call ratios) always enforce.
        enforce = not timing or (strict and cores_match)
        verdict = "OK"
        if bad:
            verdict = "REGRESSION" if enforce else "warn"
        enforced = "" if enforce else " (timing, not enforced)"
        print(
            f"{verdict:>10}  {key}: baseline {base_v:.3f} -> fresh "
            f"{fresh_v:.3f} (better: {direction}){enforced}"
        )
        if bad and enforce:
            failures.append(
                f"{key}: {fresh_v:.3f} vs baseline {base_v:.3f} "
                f"(better: {direction}, tolerance {TOLERANCE:.0%})"
            )

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
