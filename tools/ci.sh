#!/usr/bin/env bash
# One-command pre-PR gate (ISSUE 9, DESIGN.md §4k).
#
#   tools/ci.sh            # full gate: tier-1 + tsan/asan/ubsan + lint
#   tools/ci.sh --fast     # tier-1 build + tests + lint only
#
# Every stage is also runnable by hand; this script only sequences them:
#   1. default preset: configure, build, ctest (everything but perf)
#   2. sanitizer presets: tsan, asan, ubsan — each builds its tree and
#      runs its labeled suite (the sanitizer matrices in tests/)
#   3. clang-tidy over src/ using the default tree's compile_commands.json
#      (skipped with a notice when clang-tidy is not installed)
#   4. tools/graphite_lint.py — the repo-invariant linter, plus its
#      self-test and the bench gate's self-test
#
# Any stage failing fails the script (set -e). GRAPHITE_WERROR is ON for
# the default configure so new warnings fail the build here even though
# the knob defaults OFF for plain developer builds.
set -euo pipefail

cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *)
      echo "usage: tools/ci.sh [--fast]" >&2
      exit 2
      ;;
  esac
done

banner() { printf '\n=== %s ===\n' "$*"; }

banner "tier-1: configure + build (GRAPHITE_WERROR=ON)"
cmake --preset default -DGRAPHITE_WERROR=ON >/dev/null
cmake --build build -j "$(nproc)"

banner "tier-1: ctest (all labels except perf)"
ctest --test-dir build -LE perf --output-on-failure

if [[ "$FAST" -eq 0 ]]; then
  for san in tsan asan ubsan; do
    banner "sanitizer: $san build + labeled suite"
    cmake --preset "$san" >/dev/null
    cmake --build "build-$san" -j "$(nproc)"
    ctest --test-dir "build-$san" -L "$san" --output-on-failure
  done
fi

banner "clang-tidy over src/ (profile: .clang-tidy)"
if command -v clang-tidy >/dev/null 2>&1; then
  # compile_commands.json is exported by the default configure above.
  git ls-files 'src/*.cc' | xargs clang-tidy -p build --quiet
else
  echo "clang-tidy not installed; skipping (annotations are still"
  echo "compiled by -Wthread-safety when the default build uses clang)"
fi

banner "repo-invariant linter + tool self-tests"
python3 tools/graphite_lint.py --self-test
python3 tools/graphite_lint.py
python3 tools/check_bench_regression.py --self-test

banner "ci.sh: all gates passed"
