// graphite — command-line driver for the library.
//
//   graphite gen --dataset twitter --scale 0.5 --out graph.tg
//   graphite stats graph.tg
//   graphite run --alg sssp --platform icm --source 3 graph.tg
//   graphite run --alg wcc --platform msb --workers 8 graph.tg
//   graphite slice --from 2 --to 8 graph.tg --out window.tg
//   graphite bench --alg sssp graph.tg          (ICM vs all baselines)
//   graphite query --port 7171 --op run --graph t --alg bfs --source 3
//   graphite query --port 7171 --json '{"op":"list"}'
//
// Exit status: 0 on success, 1 on usage/user error.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "algorithms/runners.h"
#include "gen/generators.h"
#include "graph/graph_stats.h"
#include "io/text_format.h"
#include "query/temporal_query.h"
#include "util/json.h"
#include "util/stats.h"

namespace {

using namespace graphite;  // Tool code; the library never does this.

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  std::string Flag(const std::string& name, const std::string& def = "") const {
    auto it = flags.find(name);
    return it == flags.end() ? def : it->second;
  }
  int64_t IntFlag(const std::string& name, int64_t def) const {
    auto it = flags.find(name);
    return it == flags.end() ? def : std::atoll(it->second.c_str());
  }
  double DoubleFlag(const std::string& name, double def) const {
    auto it = flags.find(name);
    return it == flags.end() ? def : std::atof(it->second.c_str());
  }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: graphite <command> [flags] [graph-file]\n"
      "commands:\n"
      "  gen    --dataset <gplus|reddit|usrn|twitter|mag|webuk>\n"
      "         [--scale S] --out FILE          generate a catalog analog\n"
      "  stats  FILE                            Table-1 style statistics\n"
      "  run    --alg A --platform P FILE       run one algorithm\n"
      "         [--source V] [--target V] [--workers N] [--deadline T]\n"
      "         A: bfs wcc scc pr sssp eat fast ld tmst rh lcc tc\n"
      "         P: icm msb chl tgb gof\n"
      "  bench  --alg A FILE [--workers N]       ICM vs every baseline\n"
      "  slice  --from T --to T FILE --out FILE  temporal time-slice\n"
      "  query  --port N <request flags>         ask a running\n"
      "         graphite_server (127.0.0.1) and pretty-print the reply\n"
      "         --json '{...}'   send a raw request line instead of flags\n"
      "         --op OP [--graph G] [--alg A] [--platform P] [--kind K]\n"
      "         [--source V] [--target V] [--at T] [--deadline T]\n"
      "         [--from T --to T] [--workers N] [--mode M] [--label L]\n"
      "         [--dataset D] [--scale S] [--file F] [--id N]\n");
  return 1;
}

Result<Algorithm> ParseAlgorithm(const std::string& name) {
  for (Algorithm a : kAllAlgorithms) {
    std::string lower;
    for (const char* c = AlgorithmName(a); *c; ++c) {
      lower.push_back(static_cast<char>(std::tolower(*c)));
    }
    if (lower == name) return a;
  }
  return Status::InvalidArgument("unknown algorithm: " + name);
}

Result<Platform> ParsePlatform(const std::string& name) {
  for (Platform p : {Platform::kIcm, Platform::kMsb, Platform::kChl,
                     Platform::kTgb, Platform::kGof}) {
    std::string lower;
    for (const char* c = PlatformName(p); *c; ++c) {
      lower.push_back(static_cast<char>(std::tolower(*c)));
    }
    if (lower == name) return p;
  }
  return Status::InvalidArgument("unknown platform: " + name);
}

int CmdGen(const Args& args) {
  const std::string dataset = args.Flag("dataset");
  const std::string out = args.Flag("out");
  if (dataset.empty() || out.empty()) return Usage();
  const DatasetSpec spec =
      DatasetByName(dataset, args.DoubleFlag("scale", 1.0));
  const TemporalGraph g = Generate(spec.options);
  const Status s = WriteTextGraphFile(g, out);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("%s: wrote %s (%zu vertices, %zu edges, %lld snapshots)\n",
              spec.name.c_str(), out.c_str(), g.num_vertices(), g.num_edges(),
              static_cast<long long>(g.horizon()));
  return 0;
}

int CmdStats(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto g = ReadTextGraphFile(args.positional[0]);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.status().ToString().c_str());
    return 1;
  }
  const GraphStats s = ComputeGraphStats(*g);
  std::printf("snapshots            %lld\n",
              static_cast<long long>(s.num_snapshots));
  std::printf("interval graph       %s V, %s E\n",
              FormatCount(static_cast<int64_t>(s.interval_v)).c_str(),
              FormatCount(static_cast<int64_t>(s.interval_e)).c_str());
  std::printf("largest snapshot     %s V, %s E\n",
              FormatCount(static_cast<int64_t>(s.largest_snapshot_v)).c_str(),
              FormatCount(static_cast<int64_t>(s.largest_snapshot_e)).c_str());
  std::printf("transformed graph    %s V, %s E\n",
              FormatCount(static_cast<int64_t>(s.transformed_v)).c_str(),
              FormatCount(static_cast<int64_t>(s.transformed_e)).c_str());
  std::printf("multi-snapshot       %s V, %s E\n",
              FormatCount(static_cast<int64_t>(s.multi_snapshot_v)).c_str(),
              FormatCount(static_cast<int64_t>(s.multi_snapshot_e)).c_str());
  std::printf("avg lifespans        V %.2f, E %.2f, prop %.2f\n",
              s.avg_vertex_lifespan, s.avg_edge_lifespan,
              s.avg_prop_lifespan);
  return 0;
}

RunConfig ConfigFrom(const Args& args) {
  RunConfig config;
  config.num_workers = static_cast<int>(args.IntFlag("workers", 4));
  config.source = args.IntFlag("source", 0);
  config.target = args.IntFlag("target", -1);
  config.deadline = args.IntFlag("deadline", -1);
  return config;
}

int CmdRun(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto alg = ParseAlgorithm(args.Flag("alg"));
  auto platform = ParsePlatform(args.Flag("platform", "icm"));
  if (!alg.ok() || !platform.ok()) {
    std::fprintf(stderr, "error: %s%s\n", alg.status().message().c_str(),
                 platform.status().message().c_str());
    return 1;
  }
  if (!Supports(*platform, *alg)) {
    std::fprintf(stderr,
                 "error: %s does not support %s (TI: icm/msb/chl; TD: "
                 "icm/tgb/gof)\n",
                 PlatformName(*platform), AlgorithmName(*alg));
    return 1;
  }
  auto g = ReadTextGraphFile(args.positional[0]);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.status().ToString().c_str());
    return 1;
  }
  Workload w(std::move(*g));
  const RunMetrics m =
      RunForMetrics(w, *platform, *alg, ConfigFrom(args));
  std::printf("%s on %s: %s\n", AlgorithmName(*alg), PlatformName(*platform),
              m.ToString().c_str());
  return 0;
}

int CmdBench(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto alg = ParseAlgorithm(args.Flag("alg"));
  if (!alg.ok()) {
    std::fprintf(stderr, "error: %s\n", alg.status().ToString().c_str());
    return 1;
  }
  auto g = ReadTextGraphFile(args.positional[0]);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.status().ToString().c_str());
    return 1;
  }
  Workload w(std::move(*g));
  const RunConfig config = ConfigFrom(args);
  TextTable table;
  table.AddRow({"Platform", "Makespan-ms", "Compute-calls", "Messages",
                "Supersteps"});
  for (Platform p : {Platform::kIcm, Platform::kMsb, Platform::kChl,
                     Platform::kTgb, Platform::kGof}) {
    if (!Supports(p, *alg)) continue;
    const RunMetrics m = RunForMetrics(w, p, *alg, config);
    table.AddRow({PlatformName(p),
                  FormatDouble(static_cast<double>(m.makespan_ns) / 1e6, 1),
                  FormatCount(m.compute_calls), FormatCount(m.messages),
                  std::to_string(m.supersteps)});
  }
  std::printf("%s on %s:\n%s", AlgorithmName(*alg),
              args.positional[0].c_str(), table.ToString().c_str());
  return 0;
}

int CmdSlice(const Args& args) {
  if (args.positional.empty()) return Usage();
  const std::string out = args.Flag("out");
  if (out.empty()) return Usage();
  auto g = ReadTextGraphFile(args.positional[0]);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.status().ToString().c_str());
    return 1;
  }
  const Interval window(args.IntFlag("from", 0),
                        args.IntFlag("to", g->horizon()));
  if (!window.IsValid()) {
    std::fprintf(stderr, "error: empty window %s\n",
                 window.ToString().c_str());
    return 1;
  }
  const TemporalGraph sliced = TimeSlice(*g, window);
  const Status s = WriteTextGraphFile(sliced, out);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("sliced %s to %s: %zu vertices, %zu edges\n",
              window.ToString().c_str(), out.c_str(), sliced.num_vertices(),
              sliced.num_edges());
  return 0;
}

// Builds one protocol request line from the command-line flags (or takes
// --json verbatim).
std::string BuildRequestLine(const Args& args) {
  const std::string raw = args.Flag("json");
  if (!raw.empty()) return raw;
  JsonWriter w;
  w.BeginObject();
  w.Key("id").Int(args.IntFlag("id", 1));
  w.Key("op").String(args.Flag("op", "ping"));
  auto str_flag = [&](const char* flag, const char* key) {
    const std::string v = args.Flag(flag);
    if (!v.empty()) w.Key(key).String(v);
  };
  auto int_flag = [&](const char* flag, const char* key) {
    if (args.flags.count(flag) != 0) {
      w.Key(key).Int(args.IntFlag(flag, 0));
    }
  };
  str_flag("graph", "graph");
  str_flag("alg", "alg");
  str_flag("platform", "platform");
  str_flag("kind", "kind");
  str_flag("label", "label");
  str_flag("mode", "mode");
  str_flag("dataset", "dataset");
  str_flag("file", "file");
  int_flag("source", "source");
  int_flag("target", "target");
  int_flag("deadline", "deadline");
  int_flag("at", "at");
  int_flag("workers", "workers");
  int_flag("max-vertices", "max_vertices");
  if (args.flags.count("scale") != 0) {
    w.Key("scale").Double(args.DoubleFlag("scale", 1.0));
  }
  if (args.flags.count("from") != 0 || args.flags.count("to") != 0) {
    w.Key("window")
        .BeginArray()
        .Int(args.IntFlag("from", 0))
        .Int(args.IntFlag("to", 0))
        .EndArray();
  }
  if (args.Flag("cache") == "off") w.Key("cache").Bool(false);
  if (args.Flag("metrics") == "on") w.Key("metrics").Bool(true);
  w.EndObject();
  return w.Take();
}

int CmdQuery(const Args& args) {
  const int port = static_cast<int>(args.IntFlag("port", -1));
  if (port < 0) {
    std::fprintf(stderr, "error: query needs --port\n");
    return Usage();
  }
  const std::string request = BuildRequestLine(args);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "error: socket: %s\n", std::strerror(errno));
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "error: connect 127.0.0.1:%d: %s\n", port,
                 std::strerror(errno));
    ::close(fd);
    return 1;
  }
  std::string out = request + "\n";
  size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::write(fd, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "error: write: %s\n", std::strerror(errno));
      ::close(fd);
      return 1;
    }
    off += static_cast<size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);

  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(chunk, static_cast<size_t>(n));
    const size_t nl = response.find('\n');
    if (nl != std::string::npos) {
      response.resize(nl);
      break;
    }
  }
  ::close(fd);
  if (response.empty()) {
    std::fprintf(stderr, "error: no response from server\n");
    return 1;
  }

  auto doc = ParseJson(response);
  if (!doc.ok()) {
    // Not JSON (shouldn't happen) — show it raw rather than nothing.
    std::printf("%s\n", response.c_str());
    return 1;
  }
  JsonWriter pretty(2);
  doc->WriteTo(&pretty);
  std::printf("%s\n", pretty.str().c_str());
  return doc->GetBool("ok", false) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      const std::string name = argv[i] + 2;
      if (i + 1 >= argc) return Usage();
      args.flags[name] = argv[++i];
    } else {
      args.positional.push_back(argv[i]);
    }
  }
  if (args.command == "gen") return CmdGen(args);
  if (args.command == "stats") return CmdStats(args);
  if (args.command == "run") return CmdRun(args);
  if (args.command == "bench") return CmdBench(args);
  if (args.command == "slice") return CmdSlice(args);
  if (args.command == "query") return CmdQuery(args);
  return Usage();
}
