// graphite — command-line driver for the library.
//
//   graphite gen --dataset twitter --scale 0.5 --out graph.tg
//   graphite stats graph.tg
//   graphite run --alg sssp --platform icm --source 3 graph.tg
//   graphite run --alg wcc --platform msb --workers 8 graph.tg
//   graphite slice --from 2 --to 8 graph.tg --out window.tg
//   graphite bench --alg sssp graph.tg          (ICM vs all baselines)
//
// Exit status: 0 on success, 1 on usage/user error.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "algorithms/runners.h"
#include "gen/generators.h"
#include "graph/graph_stats.h"
#include "io/text_format.h"
#include "query/temporal_query.h"
#include "util/stats.h"

namespace {

using namespace graphite;  // Tool code; the library never does this.

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  std::string Flag(const std::string& name, const std::string& def = "") const {
    auto it = flags.find(name);
    return it == flags.end() ? def : it->second;
  }
  int64_t IntFlag(const std::string& name, int64_t def) const {
    auto it = flags.find(name);
    return it == flags.end() ? def : std::atoll(it->second.c_str());
  }
  double DoubleFlag(const std::string& name, double def) const {
    auto it = flags.find(name);
    return it == flags.end() ? def : std::atof(it->second.c_str());
  }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: graphite <command> [flags] [graph-file]\n"
      "commands:\n"
      "  gen    --dataset <gplus|reddit|usrn|twitter|mag|webuk>\n"
      "         [--scale S] --out FILE          generate a catalog analog\n"
      "  stats  FILE                            Table-1 style statistics\n"
      "  run    --alg A --platform P FILE       run one algorithm\n"
      "         [--source V] [--target V] [--workers N] [--deadline T]\n"
      "         A: bfs wcc scc pr sssp eat fast ld tmst rh lcc tc\n"
      "         P: icm msb chl tgb gof\n"
      "  bench  --alg A FILE [--workers N]       ICM vs every baseline\n"
      "  slice  --from T --to T FILE --out FILE  temporal time-slice\n");
  return 1;
}

Result<Algorithm> ParseAlgorithm(const std::string& name) {
  for (Algorithm a : kAllAlgorithms) {
    std::string lower;
    for (const char* c = AlgorithmName(a); *c; ++c) {
      lower.push_back(static_cast<char>(std::tolower(*c)));
    }
    if (lower == name) return a;
  }
  return Status::InvalidArgument("unknown algorithm: " + name);
}

Result<Platform> ParsePlatform(const std::string& name) {
  for (Platform p : {Platform::kIcm, Platform::kMsb, Platform::kChl,
                     Platform::kTgb, Platform::kGof}) {
    std::string lower;
    for (const char* c = PlatformName(p); *c; ++c) {
      lower.push_back(static_cast<char>(std::tolower(*c)));
    }
    if (lower == name) return p;
  }
  return Status::InvalidArgument("unknown platform: " + name);
}

int CmdGen(const Args& args) {
  const std::string dataset = args.Flag("dataset");
  const std::string out = args.Flag("out");
  if (dataset.empty() || out.empty()) return Usage();
  const DatasetSpec spec =
      DatasetByName(dataset, args.DoubleFlag("scale", 1.0));
  const TemporalGraph g = Generate(spec.options);
  const Status s = WriteTextGraphFile(g, out);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("%s: wrote %s (%zu vertices, %zu edges, %lld snapshots)\n",
              spec.name.c_str(), out.c_str(), g.num_vertices(), g.num_edges(),
              static_cast<long long>(g.horizon()));
  return 0;
}

int CmdStats(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto g = ReadTextGraphFile(args.positional[0]);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.status().ToString().c_str());
    return 1;
  }
  const GraphStats s = ComputeGraphStats(*g);
  std::printf("snapshots            %lld\n",
              static_cast<long long>(s.num_snapshots));
  std::printf("interval graph       %s V, %s E\n",
              FormatCount(static_cast<int64_t>(s.interval_v)).c_str(),
              FormatCount(static_cast<int64_t>(s.interval_e)).c_str());
  std::printf("largest snapshot     %s V, %s E\n",
              FormatCount(static_cast<int64_t>(s.largest_snapshot_v)).c_str(),
              FormatCount(static_cast<int64_t>(s.largest_snapshot_e)).c_str());
  std::printf("transformed graph    %s V, %s E\n",
              FormatCount(static_cast<int64_t>(s.transformed_v)).c_str(),
              FormatCount(static_cast<int64_t>(s.transformed_e)).c_str());
  std::printf("multi-snapshot       %s V, %s E\n",
              FormatCount(static_cast<int64_t>(s.multi_snapshot_v)).c_str(),
              FormatCount(static_cast<int64_t>(s.multi_snapshot_e)).c_str());
  std::printf("avg lifespans        V %.2f, E %.2f, prop %.2f\n",
              s.avg_vertex_lifespan, s.avg_edge_lifespan,
              s.avg_prop_lifespan);
  return 0;
}

RunConfig ConfigFrom(const Args& args) {
  RunConfig config;
  config.num_workers = static_cast<int>(args.IntFlag("workers", 4));
  config.source = args.IntFlag("source", 0);
  config.target = args.IntFlag("target", -1);
  config.deadline = args.IntFlag("deadline", -1);
  return config;
}

int CmdRun(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto alg = ParseAlgorithm(args.Flag("alg"));
  auto platform = ParsePlatform(args.Flag("platform", "icm"));
  if (!alg.ok() || !platform.ok()) {
    std::fprintf(stderr, "error: %s%s\n", alg.status().message().c_str(),
                 platform.status().message().c_str());
    return 1;
  }
  if (!Supports(*platform, *alg)) {
    std::fprintf(stderr,
                 "error: %s does not support %s (TI: icm/msb/chl; TD: "
                 "icm/tgb/gof)\n",
                 PlatformName(*platform), AlgorithmName(*alg));
    return 1;
  }
  auto g = ReadTextGraphFile(args.positional[0]);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.status().ToString().c_str());
    return 1;
  }
  Workload w(std::move(*g));
  const RunMetrics m =
      RunForMetrics(w, *platform, *alg, ConfigFrom(args));
  std::printf("%s on %s: %s\n", AlgorithmName(*alg), PlatformName(*platform),
              m.ToString().c_str());
  return 0;
}

int CmdBench(const Args& args) {
  if (args.positional.empty()) return Usage();
  auto alg = ParseAlgorithm(args.Flag("alg"));
  if (!alg.ok()) {
    std::fprintf(stderr, "error: %s\n", alg.status().ToString().c_str());
    return 1;
  }
  auto g = ReadTextGraphFile(args.positional[0]);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.status().ToString().c_str());
    return 1;
  }
  Workload w(std::move(*g));
  const RunConfig config = ConfigFrom(args);
  TextTable table;
  table.AddRow({"Platform", "Makespan-ms", "Compute-calls", "Messages",
                "Supersteps"});
  for (Platform p : {Platform::kIcm, Platform::kMsb, Platform::kChl,
                     Platform::kTgb, Platform::kGof}) {
    if (!Supports(p, *alg)) continue;
    const RunMetrics m = RunForMetrics(w, p, *alg, config);
    table.AddRow({PlatformName(p),
                  FormatDouble(static_cast<double>(m.makespan_ns) / 1e6, 1),
                  FormatCount(m.compute_calls), FormatCount(m.messages),
                  std::to_string(m.supersteps)});
  }
  std::printf("%s on %s:\n%s", AlgorithmName(*alg),
              args.positional[0].c_str(), table.ToString().c_str());
  return 0;
}

int CmdSlice(const Args& args) {
  if (args.positional.empty()) return Usage();
  const std::string out = args.Flag("out");
  if (out.empty()) return Usage();
  auto g = ReadTextGraphFile(args.positional[0]);
  if (!g.ok()) {
    std::fprintf(stderr, "error: %s\n", g.status().ToString().c_str());
    return 1;
  }
  const Interval window(args.IntFlag("from", 0),
                        args.IntFlag("to", g->horizon()));
  if (!window.IsValid()) {
    std::fprintf(stderr, "error: empty window %s\n",
                 window.ToString().c_str());
    return 1;
  }
  const TemporalGraph sliced = TimeSlice(*g, window);
  const Status s = WriteTextGraphFile(sliced, out);
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("sliced %s to %s: %zu vertices, %zu edges\n",
              window.ToString().c_str(), out.c_str(), sliced.num_vertices(),
              sliced.num_edges());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      const std::string name = argv[i] + 2;
      if (i + 1 >= argc) return Usage();
      args.flags[name] = argv[++i];
    } else {
      args.positional.push_back(argv[i]);
    }
  }
  if (args.command == "gen") return CmdGen(args);
  if (args.command == "stats") return CmdStats(args);
  if (args.command == "run") return CmdRun(args);
  if (args.command == "bench") return CmdBench(args);
  if (args.command == "slice") return CmdSlice(args);
  return Usage();
}
