#!/usr/bin/env python3
"""graphite_lint: machine-enforced repo invariants the generic tools miss.

The hot-path and protocol rules that PRs 3 and 7 established by
convention, and that clang-tidy/compilers cannot express:

  mutex   Lock only through the annotated graphite::Mutex / MutexLock /
          CondVar (util/mutex.h). Raw std::mutex, std::condition_variable,
          std::lock_guard, std::unique_lock, std::scoped_lock,
          std::shared_mutex — or including <mutex> / <condition_variable>
          / <shared_mutex> — anywhere else defeats Clang's
          -Wthread-safety analysis, which only sees annotated types.

  heap    No heap-allocation expressions (new, malloc/calloc/realloc,
          free, make_unique, make_shared) in the superstep hot path:
          src/icm/, src/vcm/, src/engine/delivery.h,
          src/engine/flat_inbox.h. Hot-path storage is arena-backed
          (util/arena.h); steady-state supersteps allocate nothing.

  vector  Every std::vector that OWNS storage in a hot-path file (member,
          local, return-by-value — not a reference/pointer parameter)
          must carry a lint:allow(vector: ...) justification naming it
          per-run setup, amortized scratch, or a legacy shim. The arena
          types are the default; unexplained vectors are rejected.

  json    JSON is built by util/json.h's JsonWriter, nowhere else: a
          printf-family call whose format string contains JSON structural
          text ({" / ": / "}) is the PR-3 truncation bug class coming
          back. sprintf (unbounded) is banned outright. util/json.cc
          itself is exempt (it implements the writer).

  simd    SIMD intrinsics live in util/simd.h only: no *mmintrin includes,
          _mm_*/..._mm512_* calls, or __m128/__m256/__m512 types anywhere
          else, so every kernel stays runtime-dispatched through the
          SimdLevel wrapper instead of hard-wiring an ISA.

Suppression: a comment containing `lint:allow(<rule>...)` on the same
line silences that rule for the line — the convention is
`lint:allow(rule: reason)` so the exception documents itself.

Usage: graphite_lint.py [--self-test] [--list-rules] [paths...]
       (default paths: src tests bench tools examples, repo-relative)
Exit status: 0 = clean, 1 = findings, 2 = usage/self-test error.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_PATHS = ["src", "tests", "bench", "tools", "examples"]
CXX_EXTENSIONS = (".h", ".cc", ".cpp", ".hpp")

# Files allowed to touch the raw primitives a rule otherwise bans.
MUTEX_HOME = "src/util/mutex.h"
JSON_HOME = "src/util/json.cc"
SIMD_HOME = "src/util/simd.h"

# The superstep hot path (DESIGN.md §4f/§4k): arena storage only.
HOT_FILES = ("src/engine/delivery.h", "src/engine/flat_inbox.h")
HOT_DIRS = ("src/icm/", "src/vcm/")

MUTEX_TOKEN = re.compile(
    r"std::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock)\b"
)
MUTEX_INCLUDE = re.compile(
    r'#\s*include\s*[<"](?:mutex|condition_variable|shared_mutex)[>"]'
)
HEAP_TOKEN = re.compile(
    r"\bnew\b|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|\bfree\s*\(|"
    r"\bmake_unique\b|\bmake_shared\b"
)
PRINTF_CALL = re.compile(r"\b(?:sn|f|v|vsn)?printf\s*\(")
SPRINTF_CALL = re.compile(r"\bsprintf\s*\(")
JSON_IN_LITERAL = re.compile(r'\{\\"|\\":|\\"\}|"\{"|"\["')
SIMD_TOKEN = re.compile(r"\b_mm(?:256|512)?_\w+|\b__m(?:128|256|512)[id]?\b")
SIMD_INCLUDE = re.compile(r"#\s*include\s*<\w*mmintrin\.h>|<immintrin\.h>")
ALLOW = re.compile(r"lint:allow\((\w+)")

RULES = ["mutex", "heap", "vector", "json", "simd"]


def strip_code(text):
    """Returns `text` with comments and string/char literals blanked out
    (newlines kept), so token rules never fire on prose or literals."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(" " * (j - i - text.count("\n", i, j)))
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = min(j + 1, n)
            out.append(quote + quote)
        else:
            out.append(c)
            i += 1
    # Rebuild preserving line structure for the comment branch.
    return "".join(out)


def template_end(code, start):
    """Index just past the `>` matching the `<` at `start`, or -1."""
    depth = 0
    for i in range(start, len(code)):
        if code[i] == "<":
            depth += 1
        elif code[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def vector_owns_storage(code_line):
    """True when a std::vector on this (comment/string-stripped) line
    declares owning storage: not a reference, pointer, or a nested
    template argument of some other type."""
    for m in re.finditer(r"std::vector\s*<", code_line):
        end = template_end(code_line, m.end() - 1)
        if end < 0:  # declaration continues on the next line: be strict
            return True
        rest = code_line[end:].lstrip()
        if rest[:1] in ("&", "*", ">", ","):  # ref/ptr/nested-arg: views
            continue
        return True
    return False


class Finding:
    def __init__(self, path, line, rule, message):
        self.path, self.line, self.rule, self.message = (
            path, line, rule, message)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def is_hot(rel):
    return rel in HOT_FILES or any(rel.startswith(d) for d in HOT_DIRS)


def lint_file(rel, text):
    findings = []
    code = strip_code(text)
    raw_lines = text.splitlines()
    code_lines = code.splitlines()
    # strip_code preserves line count; pad defensively anyway.
    while len(code_lines) < len(raw_lines):
        code_lines.append("")
    hot = is_hot(rel)

    for idx, raw in enumerate(raw_lines):
        lineno = idx + 1
        stripped = code_lines[idx]
        allowed = set(ALLOW.findall(raw))

        def report(rule, message):
            if rule not in allowed:
                findings.append(Finding(rel, lineno, rule, message))

        if rel != MUTEX_HOME:
            if MUTEX_TOKEN.search(stripped) or MUTEX_INCLUDE.search(raw):
                report(
                    "mutex",
                    "raw std locking primitive; use graphite::Mutex / "
                    "MutexLock / CondVar (util/mutex.h) so Clang's "
                    "thread-safety analysis sees it",
                )
        if hot:
            if HEAP_TOKEN.search(stripped):
                report(
                    "heap",
                    "heap allocation in the superstep hot path; use the "
                    "arena types (util/arena.h)",
                )
            if vector_owns_storage(stripped):
                report(
                    "vector",
                    "owning std::vector in a hot-path file; use "
                    "ArenaVec/SuperstepVec, or justify with "
                    "lint:allow(vector: <why this is setup/amortized>)",
                )
        if SPRINTF_CALL.search(stripped):
            report("json", "sprintf is unbounded; use snprintf or JsonWriter")
        if rel != JSON_HOME and PRINTF_CALL.search(stripped):
            if JSON_IN_LITERAL.search(raw):
                report(
                    "json",
                    "printf-built JSON; emit through util/json.h JsonWriter "
                    "(fixed-size buffers truncate silently)",
                )
        if rel != SIMD_HOME:
            if SIMD_TOKEN.search(stripped) or SIMD_INCLUDE.search(stripped):
                report(
                    "simd",
                    "SIMD intrinsics outside util/simd.h; go through the "
                    "runtime-dispatched Simd* primitives",
                )
    return findings


def collect_files(paths):
    files = []
    for p in paths:
        absolute = p if os.path.isabs(p) else os.path.join(REPO_ROOT, p)
        if os.path.isfile(absolute):
            files.append(absolute)
            continue
        for root, _, names in os.walk(absolute):
            for name in sorted(names):
                if name.endswith(CXX_EXTENSIONS):
                    files.append(os.path.join(root, name))
    return files


def run_lint(paths):
    findings = []
    for path in collect_files(paths):
        rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"error: cannot read {path}: {e}", file=sys.stderr)
            return 2
        findings.extend(lint_file(rel, text))
    for f in findings:
        print(f)
    if findings:
        print(f"\ngraphite_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("graphite_lint: clean")
    return 0


# --- self test -------------------------------------------------------------

SELF_TEST_CASES = [
    # (rule-or-None, file path the snippet pretends to live at, source)
    ("mutex", "src/server/foo.cc", "std::mutex mu;"),
    ("mutex", "src/server/foo.cc", "#include <mutex>"),
    ("mutex", "src/server/foo.cc", "std::lock_guard<std::mutex> l(mu);"),
    (None, "src/server/foo.cc", "// discusses std::mutex in a comment"),
    (None, "src/util/mutex.h", "std::mutex mu_;"),
    (None, "src/server/foo.cc",
     "std::mutex mu;  // lint:allow(mutex: adapter)"),
    ("heap", "src/icm/foo.h", "auto* p = new Thing();"),
    ("heap", "src/engine/flat_inbox.h", "void* p = malloc(64);"),
    (None, "src/icm/foo.h", "// allocate a new block lazily"),
    (None, "src/server/foo.cc", "auto* p = new Thing();"),  # not hot
    ("vector", "src/icm/foo.h", "std::vector<int> owned;"),
    ("vector", "src/vcm/foo.h", "std::vector<Tuple> Run() {"),
    (None, "src/icm/foo.h", "const std::vector<int>& view,"),
    (None, "src/icm/foo.h", "std::vector<int>* out = nullptr;"),
    (None, "src/icm/foo.h", "std::span<std::vector<Writer>>(wire)"),
    (None, "src/icm/foo.h",
     "std::vector<int> setup;  // lint:allow(vector: per-run setup)"),
    (None, "src/server/foo.cc", "std::vector<int> fine_here;"),
    ("json", "src/server/foo.cc",
     'snprintf(buf, n, "{\\"a\\": %d}", v);'),
    ("json", "bench/foo.cc", 'sprintf(buf, "%d", v);'),
    (None, "bench/foo.cc", 'std::fprintf(stderr, "[run] %s\\n", s);'),
    (None, "src/util/json.cc",
     'std::snprintf(buf, sizeof(buf), "\\u%04x", c);'),
    ("simd", "src/icm/foo.h", "__m256i v = _mm256_set1_epi64x(1);"),
    ("simd", "src/engine/foo.h", "#include <immintrin.h>"),
    (None, "src/util/simd.h", "__m256i v = _mm256_set1_epi64x(1);"),
]


def self_test():
    bad = 0
    for want_rule, rel, source in SELF_TEST_CASES:
        findings = lint_file(rel, source + "\n")
        got = sorted({f.rule for f in findings})
        want = [want_rule] if want_rule else []
        if got != want:
            bad += 1
            print(
                f"self-test FAIL: {rel!r} {source!r}: want {want}, got {got}",
                file=sys.stderr,
            )
    if bad:
        print(f"self-test: {bad} case(s) failed", file=sys.stderr)
        return 2
    print(f"self-test: {len(SELF_TEST_CASES)} cases ok")
    return 0


def main(argv):
    if "--list-rules" in argv:
        print(__doc__)
        return 0
    if "--self-test" in argv:
        return self_test()
    paths = [a for a in argv if not a.startswith("--")]
    return run_lint(paths or DEFAULT_PATHS)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
